package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The closed-loop driver. Each connection is one goroutine pacing its own
// request schedule: with C connections targeting Q aggregate QPS, a
// connection owes one request every C/Q seconds, sleeps until its next
// slot, and — being closed-loop — never has more than one request in
// flight. A response slower than the interval puts the connection behind
// schedule; it then fires back-to-back until caught up, so sustained
// overload shows up as achieved QPS falling below target rather than as
// unbounded concurrency. Latencies land in per-connection histograms
// (no shared state on the hot path) merged after the run.
//
// Around the loop the driver scrapes the server's /metrics twice and
// diffs the counters, attributing the window's latency to execution vs
// admission queueing (the two serve-side histogram sums) and exposing the
// GC pause counters — the decomposition a tail-latency investigation
// starts from.

// Query is one entry in the workload mix.
type Query struct {
	SQL    string
	Weight int // relative frequency; <= 0 means 1
}

// Config parameterizes a load run.
type Config struct {
	// Addr is the server's base address: "host:port" or a full URL.
	Addr string
	// QPS is the aggregate target rate across all connections; 0 removes
	// pacing (each connection issues back-to-back requests).
	QPS float64
	// Conns is the number of concurrent closed-loop connections; default 4.
	Conns int
	// Duration bounds the run; default 10s.
	Duration time.Duration
	// Timeout is the per-request HTTP timeout; default 10s.
	Timeout time.Duration
	// Mix is the workload; required unless Ingest takes every slot.
	Mix []Query
	// Ingest configures the write side of a mixed read/write run; nil
	// means read-only.
	Ingest *IngestConfig
}

// IngestConfig is the write side of a mixed workload: every ingest slot
// POSTs the same CSV batch to /ingest.
type IngestConfig struct {
	// Percent of requests that are ingest batches, 1..100.
	Percent int
	// Table receives the batches.
	Table string
	// Body is the CSV batch posted on each ingest request.
	Body []byte
	// Policy is "strict" (default) or "skip".
	Policy string
}

// Outcomes counts finished requests by server classification (mirroring
// the serve package's outcome labels, keyed by HTTP status).
type Outcomes struct {
	OK        uint64 `json:"ok"`
	Rejected  uint64 `json:"rejected"`  // 429/503: admission refused
	Timeouts  uint64 `json:"timeouts"`  // 504: query deadline exceeded
	Errors    uint64 `json:"errors"`    // other statuses
	Transport uint64 `json:"transport"` // request never got a response
}

// Attribution is the server-side decomposition of the load window,
// computed by diffing two /metrics scrapes.
type Attribution struct {
	// Queries the server finished during the window.
	Queries uint64 `json:"queries"`
	// WaitSeconds is the total admission-queue wait; ExecSeconds is total
	// wall time minus it — what remains is actual execution.
	WaitSeconds float64 `json:"wait_seconds"`
	ExecSeconds float64 `json:"exec_seconds"`
	// GCPauses and GCCycles are the window's stop-the-world pause and
	// cycle counts; GCPauseMaxSeconds is the process-lifetime worst pause
	// (the runtime histogram has no resettable max).
	GCPauses          uint64  `json:"gc_pauses"`
	GCCycles          uint64  `json:"gc_cycles"`
	GCPauseMaxSeconds float64 `json:"gc_pause_max_seconds"`
	// ShardQueries is the window's scatter-gather dispatch count, summed
	// across swole_shard_queries_total{shard}; zero against a non-
	// coordinator swoled.
	ShardQueries uint64 `json:"shard_queries,omitempty"`
	// IngestRows and IngestSeconds are the window's appended-row count and
	// server-side ingest wall time (its own histogram, so ExecSeconds
	// stays a pure read-execution figure); zero on read-only runs.
	IngestRows    uint64  `json:"ingest_rows,omitempty"`
	IngestSeconds float64 `json:"ingest_seconds,omitempty"`
}

// Report is a finished run, shaped for JSON (BENCH_serving.json).
type Report struct {
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Conns       int     `json:"conns"`
	DurationSec float64 `json:"duration_seconds"`
	Requests    uint64  `json:"requests"`

	Outcomes Outcomes `json:"outcomes"`

	// Latency quantiles in milliseconds, measured client-side request to
	// full response.
	P50ms  float64 `json:"p50_ms"`
	P90ms  float64 `json:"p90_ms"`
	P99ms  float64 `json:"p99_ms"`
	P999ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`

	// Ingest is present on mixed read/write runs: the write side's own
	// outcome and latency tallies. The top-level quantiles and outcomes
	// cover reads only, so a p99 gate bounds read latency unpolluted by
	// batch appends; ErrorRate spans both sides.
	Ingest *IngestStats `json:"ingest,omitempty"`

	// Server is nil when the /metrics scrape failed.
	Server *Attribution `json:"server,omitempty"`
}

// IngestStats is the write side of a mixed run's report.
type IngestStats struct {
	Requests     uint64   `json:"requests"`
	RowsAccepted uint64   `json:"rows_accepted"`
	RowsRejected uint64   `json:"rows_rejected"`
	Outcomes     Outcomes `json:"outcomes"`
	P50ms        float64  `json:"p50_ms"`
	P99ms        float64  `json:"p99_ms"`
	MaxMs        float64  `json:"max_ms"`
	MeanMs       float64  `json:"mean_ms"`
}

// ErrorRate is the fraction of requests — reads and ingests — that did
// not come back OK.
func (r *Report) ErrorRate() float64 {
	total, ok := r.Requests, r.Outcomes.OK
	if r.Ingest != nil {
		total += r.Ingest.Requests
		ok += r.Ingest.Outcomes.OK
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(ok)/float64(total)
}

// Gate checks the report against CI bounds: a p99 ceiling (0 disables)
// and a maximum error rate (negative disables). It returns one message
// per violation, empty when the run passes.
func (r *Report) Gate(maxP99 time.Duration, maxErrRate float64) []string {
	var v []string
	if r.Requests == 0 {
		return append(v, "no requests completed")
	}
	if maxP99 > 0 && time.Duration(r.P99ms*float64(time.Millisecond)) > maxP99 {
		v = append(v, fmt.Sprintf("p99 %.2fms exceeds gate %v", r.P99ms, maxP99))
	}
	if maxErrRate >= 0 {
		if rate := r.ErrorRate(); rate > maxErrRate {
			v = append(v, fmt.Sprintf("error rate %.4f exceeds gate %.4f (outcomes %+v)", rate, maxErrRate, r.Outcomes))
		}
	}
	return v
}

func (c Config) withDefaults() Config {
	if !strings.Contains(c.Addr, "://") {
		c.Addr = "http://" + c.Addr
	}
	c.Addr = strings.TrimRight(c.Addr, "/")
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// schedule expands the weighted mix into a deterministic round-robin
// cycle; connection i starts at offset i, so the mix interleaves across
// connections without shared state or randomness.
func schedule(mix []Query) []string {
	var cycle []string
	for _, q := range mix {
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		for i := 0; i < w; i++ {
			cycle = append(cycle, q.SQL)
		}
	}
	return cycle
}

// op is one slot of the combined read/write cycle.
type op struct {
	ingest bool
	sql    string
}

// buildCycle interleaves ingest slots into the read cycle at the
// configured percentage, spreading them evenly (Bresenham-style) so that
// writes arrive steadily rather than in bursts. The combined cycle spans
// 100 read-cycle repetitions, which preserves both the read weights and
// the ingest fraction exactly.
func buildCycle(mix []Query, ing *IngestConfig) []op {
	reads := schedule(mix)
	if ing == nil || ing.Percent <= 0 {
		ops := make([]op, len(reads))
		for i, sql := range reads {
			ops[i] = op{sql: sql}
		}
		return ops
	}
	p := ing.Percent
	if p > 100 {
		p = 100
	}
	n := 100
	if len(reads) > 0 {
		n = 100 * len(reads)
	}
	ops := make([]op, 0, n)
	acc, ri := 0, 0
	for i := 0; i < n; i++ {
		acc += p
		if acc >= 100 {
			acc -= 100
			ops = append(ops, op{ingest: true})
		} else {
			ops = append(ops, op{sql: reads[ri%len(reads)]})
			ri++
		}
	}
	return ops
}

// connResult is one connection's private tally, merged after the run.
type connResult struct {
	hist Hist
	out  Outcomes

	ingestHist     Hist
	ingestOut      Outcomes
	ingestAccepted uint64
	ingestRejected uint64
}

// Run drives the configured load against the server and reports. It
// returns an error only for unusable configuration or a totally
// unreachable server; per-request failures are counted, not fatal.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Mix) == 0 && (cfg.Ingest == nil || cfg.Ingest.Percent < 100) {
		return nil, fmt.Errorf("load: empty query mix")
	}
	if cfg.Ingest != nil && cfg.Ingest.Percent > 0 {
		if cfg.Ingest.Table == "" {
			return nil, fmt.Errorf("load: ingest mix needs a table")
		}
		if len(cfg.Ingest.Body) == 0 {
			return nil, fmt.Errorf("load: ingest mix needs a CSV body")
		}
	}
	cycle := buildCycle(cfg.Mix, cfg.Ingest)

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Conns,
			MaxIdleConnsPerHost: cfg.Conns,
		},
	}
	defer client.CloseIdleConnections()

	before, scrapeErr := scrape(ctx, client, cfg.Addr)

	interval := time.Duration(0)
	if cfg.QPS > 0 {
		interval = time.Duration(float64(cfg.Conns) / cfg.QPS * float64(time.Second))
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	results := make([]connResult, cfg.Conns)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			drive(runCtx, client, cfg.Addr, cycle, c, interval, cfg.Ingest, &results[c])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		TargetQPS:   cfg.QPS,
		Conns:       cfg.Conns,
		DurationSec: elapsed.Seconds(),
	}
	addOutcomes := func(dst, o *Outcomes) {
		dst.OK += o.OK
		dst.Rejected += o.Rejected
		dst.Timeouts += o.Timeouts
		dst.Errors += o.Errors
		dst.Transport += o.Transport
	}
	var hist, ingestHist Hist
	var ingest IngestStats
	for i := range results {
		hist.Merge(&results[i].hist)
		addOutcomes(&rep.Outcomes, &results[i].out)
		ingestHist.Merge(&results[i].ingestHist)
		addOutcomes(&ingest.Outcomes, &results[i].ingestOut)
		ingest.RowsAccepted += results[i].ingestAccepted
		ingest.RowsRejected += results[i].ingestRejected
	}
	rep.Requests = hist.Count() + rep.Outcomes.Transport
	ingest.Requests = ingestHist.Count() + ingest.Outcomes.Transport
	rep.AchievedQPS = float64(rep.Requests+ingest.Requests) / elapsed.Seconds()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep.P50ms = ms(hist.Quantile(0.50))
	rep.P90ms = ms(hist.Quantile(0.90))
	rep.P99ms = ms(hist.Quantile(0.99))
	rep.P999ms = ms(hist.Quantile(0.999))
	rep.MaxMs = ms(hist.Max())
	rep.MeanMs = ms(hist.Mean())
	if cfg.Ingest != nil && cfg.Ingest.Percent > 0 {
		ingest.P50ms = ms(ingestHist.Quantile(0.50))
		ingest.P99ms = ms(ingestHist.Quantile(0.99))
		ingest.MaxMs = ms(ingestHist.Max())
		ingest.MeanMs = ms(ingestHist.Mean())
		rep.Ingest = &ingest
	}

	if scrapeErr == nil {
		if after, err := scrape(ctx, client, cfg.Addr); err == nil {
			rep.Server = attribute(before, after)
		}
	}
	return rep, nil
}

// drive is one connection's closed loop: pace, pick the next slot from
// the cycle, POST it (query or ingest batch), classify, record.
func drive(ctx context.Context, client *http.Client, base string, cycle []op, conn int, interval time.Duration, ing *IngestConfig, res *connResult) {
	next := time.Now()
	for i := 0; ; i++ {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				}
			}
			next = next.Add(interval)
		}
		if ctx.Err() != nil {
			return
		}
		slot := cycle[(conn+i)%len(cycle)]
		hist, out := &res.hist, &res.out
		var d time.Duration
		var status int
		var err error
		if slot.ingest {
			hist, out = &res.ingestHist, &res.ingestOut
			var accepted, rejected uint64
			d, status, accepted, rejected, err = postIngest(ctx, client, base, ing)
			res.ingestAccepted += accepted
			res.ingestRejected += rejected
		} else {
			d, status, err = post(ctx, client, base, slot.sql)
		}
		if err != nil {
			if ctx.Err() != nil {
				return // run deadline, not a server failure
			}
			out.Transport++
			continue
		}
		hist.Record(d)
		switch {
		case status == http.StatusOK:
			out.OK++
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			out.Rejected++
		case status == http.StatusGatewayTimeout:
			out.Timeouts++
		default:
			out.Errors++
		}
	}
}

// post issues one query and measures request-to-drained-response latency.
func post(ctx context.Context, client *http.Client, base, sql string) (time.Duration, int, error) {
	body, _ := json.Marshal(map[string]string{"query": sql})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/query", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode, nil
}

// postIngest issues one CSV batch to /ingest and reads back the report's
// row counts.
func postIngest(ctx context.Context, client *http.Client, base string, ing *IngestConfig) (time.Duration, int, uint64, uint64, error) {
	url := base + "/ingest?table=" + ing.Table
	if ing.Policy != "" {
		url += "&policy=" + ing.Policy
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(ing.Body))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "text/csv")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	d := time.Since(start)
	var rep struct {
		Accepted uint64 `json:"accepted"`
		Rejected uint64 `json:"rejected"`
	}
	_ = json.Unmarshal(raw, &rep)
	return d, resp.StatusCode, rep.Accepted, rep.Rejected, nil
}

// scrape fetches /metrics and extracts the flat counters the attribution
// needs (histogram sums/counts and the GC figures).
func scrape(ctx context.Context, client *http.Client, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: /metrics returned %s", resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Labeled series are summed under the bare metric name; the only
		// one the attribution wants is the coordinator's per-shard dispatch
		// counter.
		if brace := strings.IndexByte(line, '{'); brace >= 0 {
			name := line[:brace]
			if name != "swole_shard_queries_total" {
				continue
			}
			if sp := strings.LastIndexByte(line, ' '); sp >= 0 {
				if f, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64); err == nil {
					vals[name] += f
				}
			}
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if f, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil {
			vals[name] = f
		}
	}
	return vals, nil
}

// attribute diffs two scrapes into the window's server-side story.
func attribute(before, after map[string]float64) *Attribution {
	d := func(name string) float64 { return after[name] - before[name] }
	total := d("swole_query_duration_seconds_sum")
	wait := d("swole_admission_wait_seconds_sum")
	exec := total - wait
	if exec < 0 {
		exec = 0
	}
	return &Attribution{
		Queries:           uint64(d("swole_query_duration_seconds_count")),
		WaitSeconds:       wait,
		ExecSeconds:       exec,
		GCPauses:          uint64(d("swole_gc_pauses_total")),
		GCCycles:          uint64(d("swole_gc_cycles_total")),
		GCPauseMaxSeconds: after["swole_gc_pause_max_seconds"],
		ShardQueries:      uint64(d("swole_shard_queries_total")),
		IngestRows:        uint64(d("swole_ingest_rows_total")),
		IngestSeconds:     d("swole_ingest_duration_seconds_sum"),
	}
}
