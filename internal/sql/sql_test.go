package sql

import (
	"testing"

	"github.com/reprolab/swole/internal/storage"
	"github.com/reprolab/swole/internal/volcano"
)

func testDB(t *testing.T) *storage.Database {
	t.Helper()
	n := 1000
	x := make([]int64, n)
	a := make([]int64, n)
	c := make([]int64, n)
	fk := make([]int64, n)
	s := make([]string, n)
	words := []string{"red apple", "green pear", "red plum"}
	rng := uint64(17)
	next := func(m int) int64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return int64((z ^ (z >> 27)) % uint64(m))
	}
	for i := 0; i < n; i++ {
		x[i] = next(100)
		a[i] = next(50)
		c[i] = next(5)
		fk[i] = next(20)
		s[i] = words[next(3)]
	}
	pk := make([]int64, 20)
	sx := make([]int64, 20)
	for i := range pk {
		pk[i] = int64(i)
		sx[i] = next(100)
	}
	db := storage.NewDatabase()
	db.AddTable(storage.MustNewTable("r",
		storage.Compress("r_x", x, storage.LogInt),
		storage.Compress("r_a", a, storage.LogInt),
		storage.Compress("r_c", c, storage.LogInt),
		storage.Compress("r_fk", fk, storage.LogInt),
		storage.NewStrings("r_s", s),
	))
	db.AddTable(storage.MustNewTable("dim",
		storage.Compress("d_pk", pk, storage.LogInt),
		storage.Compress("d_x", sx, storage.LogInt),
	))
	if err := db.AddFKIndex("r", "r_fk", "dim", "d_pk"); err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *storage.Database, q string) *volcano.Result {
	t.Helper()
	p, err := Compile(q, db)
	if err != nil {
		t.Fatalf("Compile(%q): %v", q, err)
	}
	res, err := volcano.Run(p, db)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	return res
}

func TestScalarAggregate(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select sum(r_a), count(*) from r where r_x < 13")
	if len(res.Rows) != 1 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	r := db.MustTable("r")
	var sum, cnt int64
	for i := 0; i < r.Rows(); i++ {
		if r.MustColumn("r_x").Get(i) < 13 {
			sum += r.MustColumn("r_a").Get(i)
			cnt++
		}
	}
	if res.Rows[0][0] != sum || res.Rows[0][1] != cnt {
		t.Errorf("got %v, want sum=%d cnt=%d", res.Rows[0], sum, cnt)
	}
}

func TestGroupByOrderLimit(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select r_c, sum(r_a) as total from r group by r_c order by total desc, r_c limit 3")
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	if res.Fields.Index("r_c") != 0 || res.Fields.Index("total") != 1 {
		t.Errorf("fields: %v", res.Fields)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1] > res.Rows[i-1][1] {
			t.Error("not sorted by total desc")
		}
	}
}

func TestSelectOrderMismatchedFromGroupBy(t *testing.T) {
	db := testDB(t)
	// Aggregate listed before the group key: the Map must reorder.
	res := run(t, db, "select sum(r_a) as s, r_c from r group by r_c")
	if res.Fields.Index("s") != 0 || res.Fields.Index("r_c") != 1 {
		t.Errorf("fields: %v", res.Fields)
	}
}

func TestWhereVarieties(t *testing.T) {
	db := testDB(t)
	r := db.MustTable("r")
	refCount := func(pred func(i int) bool) int64 {
		var c int64
		for i := 0; i < r.Rows(); i++ {
			if pred(i) {
				c++
			}
		}
		return c
	}
	xc := r.MustColumn("r_x")
	sc := r.MustColumn("r_s")

	cases := []struct {
		q    string
		want int64
	}{
		{"select count(*) from r where r_x between 10 and 20",
			refCount(func(i int) bool { v := xc.Get(i); return v >= 10 && v <= 20 })},
		{"select count(*) from r where r_x in (1, 2, 3)",
			refCount(func(i int) bool { v := xc.Get(i); return v == 1 || v == 2 || v == 3 })},
		{"select count(*) from r where r_s like 'red%'",
			refCount(func(i int) bool { s := sc.GetString(i); return len(s) >= 3 && s[:3] == "red" })},
		{"select count(*) from r where r_s not like '%pear'",
			refCount(func(i int) bool { s := sc.GetString(i); return len(s) < 4 || s[len(s)-4:] != "pear" })},
		{"select count(*) from r where not (r_x < 50)",
			refCount(func(i int) bool { return xc.Get(i) >= 50 })},
		{"select count(*) from r where r_x < 10 or r_x > 90",
			refCount(func(i int) bool { v := xc.Get(i); return v < 10 || v > 90 })},
		{"select count(*) from r where r_s = 'red apple'",
			refCount(func(i int) bool { return sc.GetString(i) == "red apple" })},
	}
	for _, tc := range cases {
		res := run(t, db, tc.q)
		if res.Rows[0][0] != tc.want {
			t.Errorf("%q = %d, want %d", tc.q, res.Rows[0][0], tc.want)
		}
	}
}

func TestProjectionQuery(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select r_x, r_a * 2 as dbl from r where r_x < 5")
	for _, row := range res.Rows {
		if row[0] >= 5 {
			t.Error("filter not applied")
		}
	}
	if res.Fields.Index("dbl") != 1 {
		t.Errorf("fields: %v", res.Fields)
	}
}

func TestTwoTableJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select sum(r_a) from r, dim where r_fk = d_pk and d_x < 50 and r_x < 50")
	r, dim := db.MustTable("r"), db.MustTable("dim")
	qual := map[int64]bool{}
	for i := 0; i < dim.Rows(); i++ {
		if dim.MustColumn("d_x").Get(i) < 50 {
			qual[int64(i)] = true
		}
	}
	var want int64
	for i := 0; i < r.Rows(); i++ {
		if r.MustColumn("r_x").Get(i) < 50 && qual[r.MustColumn("r_fk").Get(i)] {
			want += r.MustColumn("r_a").Get(i)
		}
	}
	if res.Rows[0][0] != want {
		t.Errorf("got %d, want %d", res.Rows[0][0], want)
	}
	// Table order must not matter (FK orientation wins).
	res2 := run(t, db, "select sum(r_a) from dim, r where d_pk = r_fk and d_x < 50 and r_x < 50")
	if res2.Rows[0][0] != want {
		t.Errorf("reversed: got %d, want %d", res2.Rows[0][0], want)
	}
}

func TestJoinResidual(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select count(*) from r, dim where r_fk = d_pk and r_x < d_x")
	r, dim := db.MustTable("r"), db.MustTable("dim")
	var want int64
	for i := 0; i < r.Rows(); i++ {
		fk := r.MustColumn("r_fk").Get(i)
		if r.MustColumn("r_x").Get(i) < dim.MustColumn("d_x").Get(int(fk)) {
			want++
		}
	}
	if res.Rows[0][0] != want {
		t.Errorf("got %d, want %d", res.Rows[0][0], want)
	}
}

func TestDecimalAndDateLiterals(t *testing.T) {
	db := storage.NewDatabase()
	db.AddTable(storage.MustNewTable("t",
		storage.Compress("price", []int64{150, 250, 350}, storage.LogDecimal),
		storage.Compress("d", []int64{
			int64(storage.MustParseDate("1994-01-01")),
			int64(storage.MustParseDate("1994-06-15")),
			int64(storage.MustParseDate("1995-01-01")),
		}, storage.LogDate),
	))
	p, err := Compile("select count(*) from t where price >= 2.50 and d < date '1995-01-01'", db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := volcano.Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 1 {
		t.Errorf("got %d, want 1 (only 2.50 on 1994-06-15)", res.Rows[0][0])
	}
}

func TestCaseExpression(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select sum(case when r_x < 50 then r_a else 0 end) from r")
	r := db.MustTable("r")
	var want int64
	for i := 0; i < r.Rows(); i++ {
		if r.MustColumn("r_x").Get(i) < 50 {
			want += r.MustColumn("r_a").Get(i)
		}
	}
	if res.Rows[0][0] != want {
		t.Errorf("got %d, want %d", res.Rows[0][0], want)
	}
}

func TestMinMaxAvg(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "select min(r_a), max(r_a), avg(r_a) from r")
	r := db.MustTable("r")
	mn, mx, sum := int64(1<<62), int64(-1<<62), int64(0)
	for i := 0; i < r.Rows(); i++ {
		v := r.MustColumn("r_a").Get(i)
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if res.Rows[0][0] != mn || res.Rows[0][1] != mx {
		t.Errorf("min/max: %v, want %d/%d", res.Rows[0], mn, mx)
	}
	if res.Rows[0][2] != sum*storage.DecimalOne/int64(r.Rows()) {
		t.Errorf("avg=%d", res.Rows[0][2])
	}
}

func TestParseErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"",
		"select",
		"select from r",
		"select r_x r where",
		"select sum(r_a) from",
		"select sum(r_a from r",
		"select count(*) from r where r_x <",
		"select count(*) from r where r_s like 5",
		"select count(*) from r limit x",
		"select count(*) from r where 'unterminated",
		"select count(*) from r extra",
		"select r_x from r group by r_x",           // group by without aggregate
		"select r_a, sum(r_x) from r group by r_c", // non-grouped column
		"select count(*) from r, dim",              // no join condition
		"select count(*) from r, dim, r",           // 3 tables
		"select count(*) from nosuch",
		"select nosuch from r",
		"select count(*) from r where price > 1.234", // over-scale decimal
		"select count(*) from r order by zz",
		"select case when r_x < 1 then 2 from r", // missing end
		"select count(*) from r where r_x ? 3",
	}
	for _, q := range bad {
		if p, err := Compile(q, db); err == nil {
			if _, err2 := volcano.Run(p, db); err2 == nil {
				t.Errorf("accepted bad query %q", q)
			}
		}
	}
}

func TestStringEscapes(t *testing.T) {
	db := storage.NewDatabase()
	db.AddTable(storage.MustNewTable("t", storage.NewStrings("s", []string{"it's", "plain"})))
	p, err := Compile("select count(*) from t where s = 'it''s'", db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := volcano.Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 1 {
		t.Errorf("escape: got %d", res.Rows[0][0])
	}
}
