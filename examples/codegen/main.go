// Code generation showcase: emit the paper's Figures 1, 3, 4, and 5 code
// listings, then generate code for a custom SQL query through the public
// API.
//
//	go run ./examples/codegen
package main

import (
	"fmt"
	"log"

	"github.com/reprolab/swole"
	"github.com/reprolab/swole/internal/codegen"
)

func main() {
	for _, fig := range []int{1, 3, 4, 5} {
		listings, err := codegen.Figure(fig)
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range listings {
			fmt.Printf("// %s\n%s\n", l.Caption, l.Code)
		}
	}

	// Custom query through the public API.
	db := swole.NewDB()
	if err := db.CreateTable("orders",
		swole.IntColumn("amount", []int64{10, 20, 30}),
		swole.IntColumn("region", []int64{1, 2, 1}),
		swole.IntColumn("priority", []int64{0, 1, 0}),
	); err != nil {
		log.Fatal(err)
	}
	const q = "select region, sum(amount) from orders where priority = 0 group by region"
	fmt.Println("// Custom query, key-masking strategy:")
	code, err := db.GenerateCode(q, "key-masking")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(code)
}
