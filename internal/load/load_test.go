package load

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	swole "github.com/reprolab/swole"
	"github.com/reprolab/swole/internal/serve"
)

// liveServer boots a real serve.Server over a small microbenchmark DB on
// a loopback port — the load driver's goroutines then race against the
// full serving stack (admission, execution, metrics), which is exactly
// what `go test -race ./internal/load/...` is for.
func liveServer(t *testing.T) *serve.Server {
	t.Helper()
	db, err := swole.LoadMicro(swole.MicroConfig{Rows: 20_000, DimRows: 200, GroupKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	s := serve.New(db, serve.Config{
		Addr:        "127.0.0.1:0",
		MaxInFlight: 4,
		MaxQueue:    64,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestRunAgainstLiveServer drives a short paced run and checks the
// report's accounting: every request came back OK, the histogram holds
// them all, and the scraped attribution saw the same window.
func TestRunAgainstLiveServer(t *testing.T) {
	s := liveServer(t)
	dur := 2 * time.Second
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	rep, err := Run(context.Background(), Config{
		Addr:     s.Addr(),
		QPS:      200,
		Conns:    8,
		Duration: dur,
		Mix: []Query{
			{SQL: "select sum(r_a) from r where r_x < 50", Weight: 3},
			{SQL: "select r_c, sum(r_a) from r where r_x < 50 group by r_c", Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Outcomes.OK != rep.Requests {
		t.Fatalf("outcomes not all OK: %+v of %d requests", rep.Outcomes, rep.Requests)
	}
	if rep.ErrorRate() != 0 {
		t.Fatalf("ErrorRate = %g with all-OK outcomes", rep.ErrorRate())
	}
	if rep.P50ms <= 0 || rep.P99ms < rep.P50ms || rep.MaxMs < rep.P99ms {
		t.Fatalf("quantiles disordered: p50=%g p99=%g max=%g", rep.P50ms, rep.P99ms, rep.MaxMs)
	}
	if rep.Server == nil {
		t.Fatal("no server attribution despite live /metrics")
	}
	if rep.Server.Queries < rep.Outcomes.OK {
		t.Fatalf("server saw %d queries, client completed %d", rep.Server.Queries, rep.Outcomes.OK)
	}
	if rep.Server.ExecSeconds <= 0 {
		t.Fatalf("attribution found no execution time: %+v", rep.Server)
	}
	if len(rep.Gate(0, 0)) != 0 {
		t.Fatalf("gate violations on a clean run: %v", rep.Gate(0, 0))
	}
	if v := rep.Gate(time.Nanosecond, -1); len(v) != 1 || !strings.Contains(v[0], "p99") {
		t.Fatalf("1ns p99 gate did not trip: %v", v)
	}
}

// TestRunUnpaced exercises the QPS=0 (back-to-back) path and run
// cancellation via the parent context.
func TestRunUnpaced(t *testing.T) {
	s := liveServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	rep, err := Run(ctx, Config{
		Addr:     s.Addr(),
		Conns:    2,
		Duration: time.Minute, // the cancel above ends it early
		Mix:      []Query{{SQL: "select sum(r_a) from r where r_x < 50"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests before cancel")
	}
	if rep.DurationSec > 10 {
		t.Fatalf("cancel did not end the run: %.1fs", rep.DurationSec)
	}
	if rep.Outcomes.OK == 0 {
		t.Fatalf("unpaced run completed nothing: %+v", rep.Outcomes)
	}
}

// TestRunEmptyMix pins the configuration error path.
func TestRunEmptyMix(t *testing.T) {
	if _, err := Run(context.Background(), Config{Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("empty mix accepted")
	}
}

// TestBuildCycleFractions pins the ingest interleaving: the combined
// cycle preserves both the read weights and the ingest percentage
// exactly, and spreads ingest slots rather than bunching them.
func TestBuildCycleFractions(t *testing.T) {
	mix := []Query{{SQL: "a", Weight: 3}, {SQL: "b", Weight: 1}}
	cycle := buildCycle(mix, &IngestConfig{Percent: 10})
	var ingests, as, bs, runLen, maxRun int
	for _, o := range cycle {
		if o.ingest {
			ingests++
			runLen++
			if runLen > maxRun {
				maxRun = runLen
			}
			continue
		}
		runLen = 0
		if o.sql == "a" {
			as++
		} else {
			bs++
		}
	}
	if want := len(cycle) / 10; ingests != want {
		t.Fatalf("ingest slots = %d of %d, want %d", ingests, len(cycle), want)
	}
	if maxRun > 1 {
		t.Fatalf("ingest slots bunch up (run of %d)", maxRun)
	}
	if as != 3*bs {
		t.Fatalf("read weights skewed: a=%d b=%d, want 3:1", as, bs)
	}
	if got := len(buildCycle(mix, nil)); got != 4 {
		t.Fatalf("read-only cycle length = %d, want 4", got)
	}
}

// TestRunMixedIngest drives a 90/10 read/ingest run against a live
// server and checks the split accounting: read quantiles exclude ingest
// samples, the ingest section tallies its own outcomes and row counts,
// and the scraped attribution reports the appended rows.
func TestRunMixedIngest(t *testing.T) {
	s := liveServer(t)
	dur := 2 * time.Second
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	var csv strings.Builder
	for i := 0; i < 64; i++ {
		// r_a, r_b, r_x, r_y, r_c, r_fk — r_fk within the 200-row dimension.
		fmt.Fprintf(&csv, "%d,1,%d,1,%d,%d\n", i%9, i%100, i%8, i%200)
	}
	rep, err := Run(context.Background(), Config{
		Addr:     s.Addr(),
		QPS:      200,
		Conns:    8,
		Duration: dur,
		Mix: []Query{
			{SQL: "select sum(r_a) from r where r_x < 50", Weight: 3},
			{SQL: "select r_c, sum(r_a) from r where r_x < 50 group by r_c", Weight: 1},
		},
		Ingest: &IngestConfig{
			Percent: 10,
			Table:   "r",
			Body:    []byte(csv.String()),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Outcomes.OK != rep.Requests {
		t.Fatalf("read side not clean: %+v of %d", rep.Outcomes, rep.Requests)
	}
	ing := rep.Ingest
	if ing == nil || ing.Requests == 0 {
		t.Fatalf("no ingest stats on a mixed run: %+v", ing)
	}
	if ing.Outcomes.OK != ing.Requests {
		t.Fatalf("ingest side not clean: %+v of %d", ing.Outcomes, ing.Requests)
	}
	if want := ing.Requests * 64; ing.RowsAccepted != want {
		t.Fatalf("rows accepted = %d over %d batches, want %d", ing.RowsAccepted, ing.Requests, want)
	}
	if ing.RowsRejected != 0 {
		t.Fatalf("clean batches rejected %d rows", ing.RowsRejected)
	}
	if ing.P50ms <= 0 || ing.MaxMs < ing.P50ms {
		t.Fatalf("ingest quantiles disordered: p50=%g max=%g", ing.P50ms, ing.MaxMs)
	}
	if rep.ErrorRate() != 0 {
		t.Fatalf("ErrorRate = %g on a clean mixed run", rep.ErrorRate())
	}
	if rep.Server == nil {
		t.Fatal("no server attribution")
	}
	if rep.Server.IngestRows != ing.RowsAccepted {
		t.Fatalf("server counted %d ingested rows, client %d", rep.Server.IngestRows, ing.RowsAccepted)
	}
	if rep.Server.IngestSeconds <= 0 {
		t.Fatalf("no server-side ingest time: %+v", rep.Server)
	}
	// Ingest batches must not have leaked into the read-side histogram:
	// the server's read-query count matches the read requests alone.
	if rep.Server.Queries < rep.Outcomes.OK || rep.Server.Queries > rep.Outcomes.OK+8 {
		t.Fatalf("server read-query count %d vs client reads %d", rep.Server.Queries, rep.Outcomes.OK)
	}
}
