package core

// GroupMerger folds per-shard GroupResult partials into one sorted
// answer through the exact machinery the worker merge uses: the partials
// are concatenated into the merger's pair buffer and finishCombine
// radix-sorts them and sums duplicate keys in one compaction pass. A
// shard merge is therefore the same code path as a worker merge — the
// two-phase partition-merge the single-engine runs already exercise —
// just fed cross-engine partials instead of cross-worker ones. The
// merger owns its buffers and reuses them across runs, so a warm
// scatter-gather merges without allocating.
type GroupMerger struct {
	g groupEmit
}

// Merge combines the partials into one ascending-key GroupResult. Nil
// partials (skipped shards) are ignored. The returned result aliases the
// merger's buffer and is overwritten by the next Merge.
func (m *GroupMerger) Merge(parts []*GroupResult) *GroupResult {
	m.g.reset()
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.g.pairs = append(m.g.pairs, p.Flat...)
	}
	m.g.finishCombine()
	return &m.g.out
}
