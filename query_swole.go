package swole

import (
	"sort"

	"github.com/reprolab/swole/internal/core"
	"github.com/reprolab/swole/internal/expr"
	"github.com/reprolab/swole/internal/plan"
	"github.com/reprolab/swole/internal/sql"
	"github.com/reprolab/swole/internal/storage"
	"github.com/reprolab/swole/internal/volcano"
)

// Explain describes the technique SWOLE chose for a query and the cost
// model evidence behind the choice.
type Explain struct {
	// Technique is one of: hybrid, value-masking, key-masking,
	// access-merging, positional-bitmap, eager-aggregation, or
	// "interpreter-fallback" when the query shape is outside the SWOLE
	// executor's vocabulary.
	Technique string
	// Selectivity is the sampled predicate selectivity.
	Selectivity float64
	// Groups is the estimated group count for group-by shapes.
	Groups int
	// HTBytes is the estimated hash table (or bitmap) footprint.
	HTBytes int
	// Costs holds the per-alternative cost model evaluations.
	Costs map[string]float64
	// Merged lists attributes whose accesses were merged.
	Merged []string
}

func fromCore(ex core.Explain) Explain {
	return Explain{
		Technique:   ex.Technique.String(),
		Selectivity: ex.Selectivity,
		Groups:      ex.Groups,
		HTBytes:     ex.HTBytes,
		Costs:       ex.Costs,
		Merged:      ex.Merged,
	}
}

// QuerySwole executes a SQL statement with the access-aware SWOLE
// executor. Supported shapes (the paper's operator vocabulary): filtered
// scalar and single-key group-by aggregation over one table, semijoin
// aggregation, and groupjoin aggregation over a registered foreign key.
// Other statements fall back to the interpreted engine, reported in the
// Explain as "interpreter-fallback".
func (d *DB) QuerySwole(q string) (*Result, Explain, error) {
	p, err := sql.Compile(q, d.db)
	if err != nil {
		return nil, Explain{}, err
	}
	if res, ex, ok, err := d.trySwole(p); err != nil {
		return nil, Explain{}, err
	} else if ok {
		return res, ex, nil
	}
	vres, err := volcano.Run(p, d.db)
	if err != nil {
		return nil, Explain{}, err
	}
	return &Result{res: vres}, Explain{Technique: "interpreter-fallback"}, nil
}

// trySwole pattern-matches the plan against the SWOLE executor shapes.
func (d *DB) trySwole(p plan.Node) (*Result, Explain, bool, error) {
	m, ok := p.(*plan.Map)
	if !ok {
		return nil, Explain{}, false, nil
	}
	agg, ok := m.Input.(*plan.Aggregate)
	if !ok || len(agg.Aggs) != 1 {
		return nil, Explain{}, false, nil
	}
	spec := agg.Aggs[0]
	switch {
	case spec.Func == plan.Sum && spec.Arg != nil:
		// sum(expr) passes through.
	case spec.Func == plan.Count && spec.Arg == nil:
		// count(*) is sum(1).
		spec.Arg = &expr.Const{Val: 1}
	default:
		return nil, Explain{}, false, nil
	}

	switch input := agg.Input.(type) {
	case *plan.Scan:
		if len(agg.GroupBy) == 0 {
			sum, ex, err := d.engine.ScalarAgg(core.ScalarAgg{
				Table: input.Table, Filter: input.Filter, Agg: spec.Arg,
			})
			if err != nil {
				return nil, Explain{}, false, err
			}
			return scalarResult(spec.As, sum), fromCore(ex), true, nil
		}
		if len(agg.GroupBy) == 1 {
			groups, ex, err := d.engine.GroupAgg(core.GroupAgg{
				Table: input.Table, Filter: input.Filter,
				Key: expr.NewCol(agg.GroupBy[0]), Agg: spec.Arg,
			})
			if err != nil {
				return nil, Explain{}, false, err
			}
			return groupResult(agg.GroupBy[0], spec.As, groups), fromCore(ex), true, nil
		}
	case *plan.Join:
		probe, pok := input.Probe.(*plan.Scan)
		build, bok := input.Build.(*plan.Scan)
		if !pok || !bok || input.Residual != nil || input.Semi {
			return nil, Explain{}, false, nil
		}
		// The aggregate must touch only probe columns for the join to be
		// a semijoin in disguise.
		if !colsSubset(expr.Cols(spec.Arg), d.db.MustTable(probe.Table)) {
			return nil, Explain{}, false, nil
		}
		if len(agg.GroupBy) == 0 {
			sum, ex, err := d.engine.SemiJoinAgg(core.SemiJoinAgg{
				Probe: probe.Table, Build: build.Table,
				FK: input.ProbeKey, PK: input.BuildKey,
				ProbeFilter: probe.Filter, BuildFilter: build.Filter,
				Agg: spec.Arg,
			})
			if err != nil {
				return nil, Explain{}, false, err
			}
			return scalarResult(spec.As, sum), fromCore(ex), true, nil
		}
		if len(agg.GroupBy) == 1 && agg.GroupBy[0] == input.ProbeKey && probe.Filter == nil {
			groups, ex, err := d.engine.GroupJoinAgg(core.GroupJoinAgg{
				Probe: probe.Table, Build: build.Table,
				FK: input.ProbeKey, PK: input.BuildKey,
				BuildFilter: build.Filter, Agg: spec.Arg,
			})
			if err != nil {
				return nil, Explain{}, false, err
			}
			return groupResult(agg.GroupBy[0], spec.As, groups), fromCore(ex), true, nil
		}
	}
	return nil, Explain{}, false, nil
}

func colsSubset(cols []string, t *storage.Table) bool {
	for _, c := range cols {
		if t.Column(c) == nil {
			return false
		}
	}
	return true
}

func scalarResult(name string, v int64) *Result {
	return &Result{res: &volcano.Result{
		Fields: volcano.Fields{{Name: name}},
		Rows:   []volcano.Row{{v}},
	}}
}

func groupResult(keyName, aggName string, groups map[int64]int64) *Result {
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	res := &volcano.Result{Fields: volcano.Fields{{Name: keyName}, {Name: aggName}}}
	for _, k := range keys {
		res.Rows = append(res.Rows, volcano.Row{k, groups[k]})
	}
	return &Result{res: res}
}
