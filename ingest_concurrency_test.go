package swole

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Ingest/read concurrency: the append path's contract is that a reader
// never observes a torn batch — every aggregate reflects the initial data
// plus a *prefix* of the appended batches (an append registers its
// replacement table atomically; stale cached plans answer as of just
// before the swap on the immutable old arrays). Run with -race.

// TestIngestConcurrentReaders hammers one table with 2 ingest writers
// (one through AppendCSV's kernel path, one through AppendRows) and 12
// readers through DB.QueryContext, unsharded and sharded. Every batch
// adds exactly batchSum to sum(a), so a reader's answer must always be
// initial + j*batchSum for some 0 <= j <= batches applied — anything else
// is a torn read. Afterwards the warm plan must re-cache.
func TestIngestConcurrentReaders(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d := cacheTestDB(t, 1) // table t(a, x, c), 4096 rows
			defer d.Close()
			if shards > 1 {
				if err := d.ShardTable("t", shards); err != nil {
					t.Fatal(err)
				}
			}
			q := "select sum(a) from t where x < 5"
			initialRes, err := d.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			initial := initialRes.Rows()[0][0]

			// Each batch: batchRows rows with x = 0 (all pass the filter)
			// and a summing to batchSum.
			const writers, readers, batches, batchRows = 2, 12, 20, 64
			const batchSum = 64 * 3
			csvBatch := func() []byte {
				var b strings.Builder
				for i := 0; i < batchRows; i++ {
					fmt.Fprintf(&b, "3,0,%d\n", i%5)
				}
				return []byte(b.String())
			}()
			rowBatch := make([][]int64, batchRows)
			for i := range rowBatch {
				rowBatch[i] = []int64{3, 0, int64(i % 5)}
			}

			var wg sync.WaitGroup
			errs := make(chan error, writers+readers)
			done := make(chan struct{})
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for it := 0; it < batches/writers; it++ {
						if w == 0 {
							rep, err := d.AppendCSV("t", csvBatch, IngestStrict)
							if err != nil {
								errs <- fmt.Errorf("writer %d: %w", w, err)
								return
							}
							if rep.Accepted != batchRows {
								errs <- fmt.Errorf("writer %d: accepted %d, want %d", w, rep.Accepted, batchRows)
								return
							}
						} else if err := d.AppendRows("t", rowBatch); err != nil {
							errs <- fmt.Errorf("writer %d: %w", w, err)
							return
						}
					}
				}()
			}
			go func() { // close done when the writers finish
				wg.Wait()
				close(done)
			}()
			var rg sync.WaitGroup
			for r := 0; r < readers; r++ {
				r := r
				rg.Add(1)
				go func() {
					defer rg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						res, _, err := d.QueryContext(context.Background(), q)
						if err != nil {
							errs <- fmt.Errorf("reader %d: %w", r, err)
							return
						}
						got := res.Rows()[0][0]
						j := got - initial
						if j < 0 || j%batchSum != 0 || j/batchSum > batches {
							errs <- fmt.Errorf("reader %d: sum %d is not initial+j*batchSum (torn read)", r, got)
							return
						}
					}
				}()
			}
			rg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			// All batches applied: the final answer is exact, and the warm
			// plan re-caches after the last invalidation.
			res, _, err := d.QueryContext(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Rows()[0][0], initial+int64(batches)*batchSum; got != want {
				t.Errorf("final sum = %d, want %d", got, want)
			}
			if _, ex, err := d.QueryContext(context.Background(), q); err != nil || !ex.PlanCached {
				t.Errorf("warm plan did not re-cache after ingest (err %v)", err)
			}
		})
	}
}
