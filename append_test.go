package swole

import (
	"fmt"
	"strings"
	"testing"
)

// appendTestDB builds a table exercising every field kind the ingestion
// kernels decode: int, decimal, date, and dictionary-encoded string.
func appendTestDB(t *testing.T) *DB {
	t.Helper()
	d := NewDB()
	err := d.CreateTable("sales",
		IntColumn("qty", []int64{1, 2, 3, 4}),
		DecimalColumn("price", []int64{150, 250, 350, 450}),
		DateColumn("day", []string{"1994-01-01", "1994-06-01", "1995-01-01", "1995-06-01"}),
		StringColumn("region", []string{"asia", "europe", "asia", "asia"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func sumQty(t *testing.T, d *DB, q string) int64 {
	t.Helper()
	res, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows()[0][0]
}

func TestAppendCSVUnsharded(t *testing.T) {
	d := appendTestDB(t)
	defer d.Close()
	verBefore := d.db.TableVersion("sales")
	rep, err := d.AppendCSV("sales", []byte("10,9.99,1996-03-15,europe\n20,1.50,1996-04-01,asia\n"), IngestStrict)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 2 || rep.Rejected != 0 || len(rep.Errors) != 0 {
		t.Fatalf("report = %+v, want 2 accepted", rep)
	}
	if got := d.db.Table("sales").Rows(); got != 6 {
		t.Fatalf("rows = %d, want 6", got)
	}
	if got := d.db.TableVersion("sales"); got != verBefore+1 {
		t.Errorf("version = %d, want %d", got, verBefore+1)
	}
	// New rows visible to the interpreter with every kind decoded.
	if got := sumQty(t, d, "select sum(qty) from sales where region = 'asia'"); got != 28 {
		t.Errorf("asia qty = %d, want 28", got)
	}
	if got := sumQty(t, d, "select sum(qty) from sales where day > date '1996-01-01'"); got != 30 {
		t.Errorf("1996 qty = %d, want 30", got)
	}
	if got := sumQty(t, d, "select sum(price) from sales"); got != 150+250+350+450+999+150 {
		t.Errorf("price sum = %d", got)
	}
}

func TestAppendCSVStrictRejectsWholeBatch(t *testing.T) {
	d := appendTestDB(t)
	defer d.Close()
	rep, err := d.AppendCSV("sales", []byte("10,9.99,1996-03-15,europe\nbad,1.50,1996-04-01,asia\n"), IngestStrict)
	if err == nil {
		t.Fatal("strict batch with malformed row accepted")
	}
	if rep.Accepted != 0 {
		t.Errorf("strict failure reported %d accepted, want 0", rep.Accepted)
	}
	if len(rep.Errors) == 0 || !strings.Contains(rep.Errors[0], "line 2") {
		t.Errorf("errors = %v, want line-2 attribution", rep.Errors)
	}
	if got := d.db.Table("sales").Rows(); got != 4 {
		t.Errorf("strict failure appended rows: %d, want 4", got)
	}
	// The latched kernel error must not poison the next batch.
	rep, err = d.AppendCSV("sales", []byte("10,9.99,1996-03-15,europe\n"), IngestStrict)
	if err != nil || rep.Accepted != 1 {
		t.Fatalf("append after strict failure: %+v, %v", rep, err)
	}
}

func TestAppendCSVSkipPolicy(t *testing.T) {
	d := appendTestDB(t)
	defer d.Close()
	doc := "10,9.99,1996-03-15,europe\n" +
		"bad,1.50,1996-04-01,asia\n" + // malformed int
		"20,0.25,1996-05-01,mars\n" + // not in dictionary
		"30,1.00,1996-06-01,asia\n"
	rep, err := d.AppendCSV("sales", []byte(doc), IngestSkip)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 2 || rep.Rejected != 2 {
		t.Fatalf("report = %+v, want 2 accepted 2 rejected", rep)
	}
	if len(rep.Errors) != 2 || !strings.Contains(rep.Errors[1], "dictionary") {
		t.Errorf("errors = %v", rep.Errors)
	}
	if got := d.db.Table("sales").Rows(); got != 6 {
		t.Errorf("rows = %d, want 6", got)
	}
}

func TestAppendRows(t *testing.T) {
	d := appendTestDB(t)
	defer d.Close()
	// Raw values: dict code 0 = "asia" (order-preserving dictionary).
	if err := d.AppendRows("sales", [][]int64{{5, 500, 9000, 0}}); err != nil {
		t.Fatal(err)
	}
	if got := sumQty(t, d, "select sum(qty) from sales where region = 'asia'"); got != 13 {
		t.Errorf("asia qty = %d, want 13", got)
	}
	if err := d.AppendRows("sales", [][]int64{{5, 500}}); err == nil {
		t.Error("short row accepted")
	}
	if err := d.AppendRows("sales", [][]int64{{5, 500, 9000, 99}}); err == nil {
		t.Error("out-of-dictionary code accepted")
	}
	if err := d.AppendRows("nope", [][]int64{{1}}); err == nil {
		t.Error("append to missing table accepted")
	}
	if err := d.AppendRows("sales", nil); err != nil {
		t.Errorf("empty append: %v", err)
	}
}

func TestAppendExtendsFKIndex(t *testing.T) {
	d, err := LoadMicro(MicroConfig{Rows: 10_000, DimRows: 100, GroupKeys: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q := "select sum(r_a) from r, s where r_fk = s_pk and s_x < 50"
	want, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Append child rows with valid foreign keys; the index must extend.
	// Column order: r_a, r_b, r_x, r_y, r_c, r_fk.
	rows := make([][]int64, 500)
	for i := range rows {
		rows[i] = []int64{int64(i % 9), 1, int64(i % 100), 1, int64(i % 8), int64(i % 100)}
	}
	if err := d.AppendRows("r", rows); err != nil {
		t.Fatal(err)
	}
	if got := len(d.db.FK("r", "r_fk", "s", "s_pk").Pos); got != 10_500 {
		t.Fatalf("fk index covers %d rows, want 10500", got)
	}
	got, ex, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Technique == "interpreter-fallback" {
		t.Fatal("fell back to interpreter")
	}
	ref, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows()[0][0] == want.Rows()[0][0] {
		t.Error("append did not change the join answer (test is vacuous)")
	}
	if got.Rows()[0][0] != ref.Rows()[0][0] {
		t.Errorf("swole = %d, interpreter = %d", got.Rows()[0][0], ref.Rows()[0][0])
	}

	// A violating foreign key aborts before anything registers.
	rowsBefore := d.db.Table("r").Rows()
	bad := [][]int64{{1, 1, 1, 1, 0, 9999}} // no s_pk = 9999
	if err := d.AppendRows("r", bad); err == nil {
		t.Fatal("referential-integrity violation accepted")
	}
	if got := d.db.Table("r").Rows(); got != rowsBefore {
		t.Errorf("failed append left %d rows, want %d", got, rowsBefore)
	}

	// Appending a duplicate key to the parent aborts too.
	if err := d.AppendRows("s", [][]int64{{0, 1}}); err == nil {
		t.Error("duplicate parent primary key accepted")
	}
	if err := d.AppendRows("s", [][]int64{{100, 1}}); err != nil {
		t.Errorf("fresh parent key rejected: %v", err)
	}
}

func TestAppendShardedRoutesToLastShard(t *testing.T) {
	d := cacheTestDB(t, 1) // table t: 4096 rows
	defer d.Close()
	if err := d.ShardTable("t", 4); err != nil { // target 1024/shard
		t.Fatal(err)
	}
	ref := func() int64 { return sumQty(t, d, "select sum(a) from t where x < 5") }
	want := ref()
	// A small append fits the last shard: fan-out stays at 4.
	rows := make([][]int64, 100)
	for i := range rows {
		rows[i] = []int64{int64(i % 7), int64(i % 10), int64(i % 5)}
	}
	if err := d.AppendRows("t", rows); err != nil {
		t.Fatal(err)
	}
	if got := d.ShardCount("t"); got != 4 {
		t.Fatalf("ShardCount = %d after small append, want 4", got)
	}
	meta := d.shardMeta["t"]
	if got := meta.bounds[4]; got != 4196 {
		t.Fatalf("last bound = %d, want 4196", got)
	}
	if got := d.fleet[3].db.Table("t").Rows(); got != 4196-meta.bounds[3] {
		t.Errorf("last shard rows = %d, want %d", got, 4196-meta.bounds[3])
	}
	res, ex, err := d.QuerySwole("select sum(a) from t where x < 5")
	if err != nil {
		t.Fatal(err)
	}
	if ex.ShardCount != 4 {
		t.Errorf("query fan-out = %d, want 4", ex.ShardCount)
	}
	newWant := ref()
	if newWant == want {
		t.Fatal("append did not change the answer (test is vacuous)")
	}
	if got := res.Rows()[0][0]; got != newWant {
		t.Errorf("sharded answer = %d, interpreter = %d", got, newWant)
	}
}

func TestAppendShardGrowth(t *testing.T) {
	d := cacheTestDB(t, 1) // 4096 rows
	defer d.Close()
	if err := d.ShardTable("t", 2); err != nil { // target 2048/shard
		t.Fatal(err)
	}
	big := make([][]int64, 2100)
	for i := range big {
		big[i] = []int64{int64(i % 7), int64(i % 10), int64(i % 5)}
	}
	// First big append: last shard goes 2048 → 4148 rows, still k=2
	// (growth triggers when the shard is already at 2× target).
	if err := d.AppendRows("t", big); err != nil {
		t.Fatal(err)
	}
	if got := d.ShardCount("t"); got != 2 {
		t.Fatalf("ShardCount = %d, want 2", got)
	}
	// Second append finds the last shard at 4148 >= 2*2048: grows shard 3
	// covering exactly the delta.
	if err := d.AppendRows("t", big[:300]); err != nil {
		t.Fatal(err)
	}
	if got := d.ShardCount("t"); got != 3 {
		t.Fatalf("ShardCount = %d after growth, want 3", got)
	}
	meta := d.shardMeta["t"]
	if got := meta.bounds[3] - meta.bounds[2]; got != 300 {
		t.Errorf("grown shard rows = %d, want 300", got)
	}
	if got := d.fleet[2].db.Table("t").Rows(); got != 300 {
		t.Errorf("member 2 holds %d rows, want 300", got)
	}
	res, ex, err := d.QuerySwole("select c, sum(a) from t where x < 5 group by c")
	if err != nil {
		t.Fatal(err)
	}
	if ex.ShardCount != 3 {
		t.Errorf("query fan-out = %d, want 3", ex.ShardCount)
	}
	refRes, err := d.Query("select c, sum(a) from t where x < 5 group by c")
	if err != nil {
		t.Fatal(err)
	}
	gm, wm := rowsAsMap(t, res), rowsAsMap(t, refRes)
	for k, w := range wm {
		if gm[k] != w {
			t.Errorf("group %d = %d, want %d", k, gm[k], w)
		}
	}
}

func TestAppendInvalidatesPlansThenRecaches(t *testing.T) {
	d := cacheTestDB(t, 1)
	defer d.Close()
	q := "select sum(a) from t where x < 5"
	if _, _, err := d.QuerySwole(q); err != nil {
		t.Fatal(err)
	}
	if _, ex, err := d.QuerySwole(q); err != nil || !ex.PlanCached {
		t.Fatalf("warm run not cached (err %v)", err)
	}
	if err := d.AppendRows("t", [][]int64{{100, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	res, ex, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.PlanCached {
		t.Error("stale plan served after append")
	}
	if got, want := res.Rows()[0][0], sumQty(t, d, q); got != want {
		t.Errorf("post-append answer = %d, want %d", got, want)
	}
	if _, ex, err = d.QuerySwole(q); err != nil || !ex.PlanCached {
		t.Errorf("plan did not re-cache after append (err %v)", err)
	}
}

func TestAppendCSVKernelReuseAndSchemaDrift(t *testing.T) {
	d := appendTestDB(t)
	defer d.Close()
	if _, err := d.AppendCSV("sales", []byte("1,1.00,1996-01-01,asia\n"), IngestStrict); err != nil {
		t.Fatal(err)
	}
	k1 := d.kernels["sales"]
	if _, err := d.AppendCSV("sales", []byte("2,2.00,1996-01-02,europe\n"), IngestSkip); err != nil {
		t.Fatal(err)
	}
	if d.kernels["sales"] != k1 {
		t.Error("kernel rebuilt for an unchanged schema")
	}
	// Replacing the table under the same name drifts the schema (fresh
	// dictionary): the cached kernel must be recompiled.
	if err := d.CreateTable("sales",
		IntColumn("qty", []int64{1}),
		DecimalColumn("price", []int64{100}),
		DateColumn("day", []string{"1994-01-01"}),
		StringColumn("region", []string{"asia"}),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendCSV("sales", []byte("3,3.00,1996-01-03,asia\n"), IngestStrict); err != nil {
		t.Fatal(err)
	}
	if d.kernels["sales"] == k1 {
		t.Error("kernel not rebuilt after CreateTable replaced the schema")
	}
	if got := d.db.Table("sales").Rows(); got != 2 {
		t.Errorf("rows = %d, want 2", got)
	}
}

// TestAppendStatsMergedNotDropped pins the append-path half of the
// invalidation granularity story at the public level: an append keeps the
// appended table's statistics entries alive (merged, re-keyed to the new
// version) and other tables' plans and statistics untouched.
func TestAppendStatsMergedNotDropped(t *testing.T) {
	d := cacheTestDB(t, 1) // table t
	defer d.Close()
	vals := make([]int64, 128)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := d.CreateTable("u", IntColumn("v", vals)); err != nil {
		t.Fatal(err)
	}
	qt := "select c, sum(a) from t where x < 5 group by c"
	qu := "select sum(v) from u where v < 100"
	for _, q := range []string{qt, qu} {
		if _, _, err := d.QuerySwole(q); err != nil {
			t.Fatal(err)
		}
	}
	statsBefore := d.engine.StatsCacheLen()
	if statsBefore == 0 {
		t.Fatal("no stats sampled (test is vacuous)")
	}
	if err := d.AppendRows("t", [][]int64{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if got := d.engine.StatsCacheLen(); got != statsBefore {
		t.Errorf("append changed stats cache size: %d, want %d (entries merged, not dropped)", got, statsBefore)
	}
	// u's plan survived; t's was evicted and must recompile with the
	// merged statistics served as cache hits.
	if _, ex, err := d.QuerySwole(qu); err != nil || !ex.PlanCached {
		t.Errorf("u's plan evicted by t's append (err %v)", err)
	}
	if _, ex, err := d.QuerySwole(qt); err != nil {
		t.Fatal(err)
	} else {
		if ex.PlanCached {
			t.Error("t's stale plan served after append")
		}
		if !ex.StatsCached {
			t.Error("t's recompile re-sampled: merged statistics missed")
		}
	}
}

func TestAppendCSVReportsString(t *testing.T) {
	// Exercise IngestReport through a fmt round-trip so the json tags and
	// error rendering stay covered even without the server in the loop.
	rep := IngestReport{Accepted: 3, Rejected: 1, Errors: []string{"line 2: bad"}}
	if s := fmt.Sprintf("%+v", rep); !strings.Contains(s, "Accepted:3") {
		t.Errorf("report render: %s", s)
	}
}
