// Package core is the reusable heart of SWOLE: given a query shape, it
// estimates statistics, consults the cost models of internal/cost, picks a
// technique — predicate pushdown (hybrid) or one of the paper's pullup
// techniques (value masking, key masking, positional bitmaps, eager
// aggregation) — and executes it over the column store with generic tiled
// kernels. Each execution returns an Explain describing the decision, the
// model costs, and the statistics they were based on.
//
// Every shape executes through one compiled-plan pipeline (compile.go):
// compile validates and plans the query, binds the chosen kernel and
// plan-owned buffers, and run() executes on the engine's persistent
// morsel-worker gang. The public entry points are modes of that pipeline —
// Prepare* compiles and keeps, the one-shot methods compile once and cache
// the plan by query value (replays allocate nothing), and *Forced compiles
// with a technique override and recycles the plan husk through a free
// list. There is exactly one kernel per (shape, technique).
//
// The hand-specialized kernels in internal/micro and internal/tpch are the
// measured reproductions of the paper's figures (the paper hand-coded each
// strategy); this package is what a downstream user calls for their own
// queries.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/reprolab/swole/internal/cost"
	"github.com/reprolab/swole/internal/exec"
	"github.com/reprolab/swole/internal/expr"
	"github.com/reprolab/swole/internal/ht"
	"github.com/reprolab/swole/internal/storage"
	"github.com/reprolab/swole/internal/vec"
)

// Technique identifies the physical technique chosen for an operator.
type Technique int

// Techniques SWOLE chooses among.
const (
	TechHybrid Technique = iota
	TechValueMasking
	TechKeyMasking
	TechAccessMerging
	TechPositionalBitmap
	TechEagerAggregation
	TechDataCentric
)

// String names the technique.
func (t Technique) String() string {
	return [...]string{
		"hybrid", "value-masking", "key-masking", "access-merging",
		"positional-bitmap", "eager-aggregation", "data-centric",
	}[t]
}

// Explain records a planning decision.
type Explain struct {
	Technique   Technique
	Selectivity float64 // estimated predicate selectivity
	Groups      int     // estimated group count (group-by shapes)
	HTBytes     int     // estimated hash table footprint
	CompCost    float64 // estimated per-tuple computation cost
	Costs       map[string]float64
	Merged      []string // attributes whose accesses were merged

	// Workers is the number of morsel workers the executor ran on; the
	// cost models were evaluated with Params.ForWorkers(Workers).
	Workers int
	// ScanTime is the wall time of the parallel scan phases (build and
	// probe passes included, for join shapes).
	ScanTime time.Duration
	// MergeTime is the wall time of the final single-threaded merge of
	// per-worker partial states.
	MergeTime time.Duration

	// Partitioned reports that the radix-partitioned two-phase path ran
	// instead of direct per-worker hash tables: phase 1 scatters (key,
	// value) pairs into radix partition buffers, phase 2 aggregates each
	// partition in a cache-resident table.
	Partitioned bool
	// Partitions is the radix fan-out of the partitioned path (power of
	// two); 0 when Partitioned is false.
	Partitions int
	// PartitionTime is the wall time of phase 1, the partition-scatter
	// scan; included in ScanTime.
	PartitionTime time.Duration

	// StatsCached reports that the selectivity/group statistics above came
	// from the engine's statistics cache instead of a fresh sampling pass.
	StatsCached bool
	// PlanCached reports that the whole planning decision was replayed
	// from a prepared query (sampling AND cost-model evaluation skipped).
	PlanCached bool
	// HTGrows counts hash-table growth events that fired during the scan
	// phases; 0 means the cardinality-hinted preallocation was sufficient.
	HTGrows int
	// FreshAllocs counts execution resources (worker scratch sets, hash
	// tables, bitmaps) newly allocated for this execution rather than
	// recycled from the engine's pools; 0 in steady state.
	FreshAllocs int

	// Variants aggregates the kernel-variant selection counters across the
	// run's workers: which lane widths the compare/widen prepasses ran at,
	// how tile selection split across the density classes, how many tiles
	// went through dict-coded or masked forms, and how many elements the
	// software-prefetched probe/scatter loops covered. All zero for plans
	// compiled before the variant layer or for the tuple-at-a-time kernel.
	Variants vec.Counters
}

func (e Explain) String() string {
	part := ""
	if e.Partitioned {
		part = fmt.Sprintf(" partitioned=%d(p1=%s)", e.Partitions, e.PartitionTime)
	}
	variants := ""
	if e.Variants.Total() > 0 {
		variants = fmt.Sprintf(" variants=[%s]", e.Variants.String())
	}
	return fmt.Sprintf("technique=%s sel=%.3f comp=%.1f ht=%dB workers=%d%s scan=%s merge=%s stats_cached=%t plan_cached=%t ht_grows=%d fresh_allocs=%d costs=%v merged=%v%s",
		e.Technique, e.Selectivity, e.CompCost, e.HTBytes, e.Workers, part,
		e.ScanTime, e.MergeTime, e.StatsCached, e.PlanCached, e.HTGrows, e.FreshAllocs,
		e.Costs, e.Merged, variants)
}

// PartitionMode selects how the engine decides between direct and radix-
// partitioned group-by execution.
type PartitionMode int

// Partition modes.
const (
	// PartitionAuto lets the cost model choose (the default): partition
	// when the estimated hash-table footprint overflows the partition
	// budget and the two-phase model is cheaper than the direct one.
	PartitionAuto PartitionMode = iota
	// PartitionOff forces the direct path.
	PartitionOff
	// PartitionOn forces the partitioned path regardless of cost (tests,
	// experiments, benchmarks).
	PartitionOn
)

// String names the mode.
func (m PartitionMode) String() string {
	switch m {
	case PartitionOff:
		return "off"
	case PartitionOn:
		return "on"
	}
	return "auto"
}

// Engine executes queries over a database with a given cost model.
//
// The engine recycles execution state at plan granularity: each shape's
// one-shot entry point caches its compiled plans by query value and
// replays them (re-running an unchanged query samples nothing, plans
// nothing, and allocates nothing), the forced entry points recycle plan
// husks through bounded free lists, and sampled statistics are cached per
// (table version, expression) so even a fresh compile of a repeated shape
// skips the sampling pass. Engine methods are safe for concurrent use;
// executions serialize on the persistent worker gang's lock.
type Engine struct {
	DB     *storage.Database
	Params cost.Params

	// Workers is the number of morsel workers the executor dispatches
	// kernels on; 0 (the default) selects runtime.NumCPU(). Results are
	// identical at every worker count: each worker aggregates into
	// private partial state and the merges are exact int64 sums.
	Workers int
	// MorselRows overrides the executor's morsel length in rows; 0 keeps
	// exec.DefaultMorselRows. Exposed for tests and experiments.
	MorselRows int
	// Partition selects direct vs radix-partitioned group-by execution;
	// the zero value (PartitionAuto) defers to the cost model.
	Partition PartitionMode

	// The statistics cache (stats.go), the per-shape one-shot plan caches,
	// and the husk free lists (pools.go); mu guards them all.
	mu         sync.Mutex
	stats      statsCache
	planScalar map[ScalarAgg]*PreparedScalarAgg
	planGroup  map[GroupAgg]*PreparedGroupAgg
	planSemi   map[SemiJoinAgg]*PreparedSemiJoinAgg
	planGJoin  map[GroupJoinAgg]*PreparedGroupJoinAgg
	freeScalar []*PreparedScalarAgg
	freeGroup  []*PreparedGroupAgg
	freeSemi   []*PreparedSemiJoinAgg
	freeGJoin  []*PreparedGroupJoinAgg

	// The persistent worker gang every plan scans on; execMu serializes
	// executions on it. The scatter arena rides under the same lock: every
	// partitioned plan's workers append into this one pool, it is reserved
	// at bind and reset at the top of each radix run, and it must never
	// grow while a scan is appending.
	execMu     sync.Mutex
	gang       *exec.Workers
	gangN      int
	gangMorsel int
	scatter    *ht.ScatterPool
}

// NewEngine returns an engine with default cost parameters and one morsel
// worker per CPU.
func NewEngine(db *storage.Database) *Engine {
	return &Engine{DB: db, Params: cost.Default()}
}

// workers resolves the configured worker count.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.NumCPU()
}

// workerState is the private scratch one morsel worker evaluates tiles
// with: an expression evaluator plus the tile buffers (exec.Scratch) the
// kernels in this package share. Workers never exchange scratch, so the
// tiled kernels run exactly as in the sequential engine. States are
// recycled across queries via the engine's pool (getStates/putStates).
type workerState struct {
	ev *expr.Evaluator
	// ctr is this worker's kernel-variant counters. The evaluator shares
	// the same struct (via SetCounters), so the compare/widen prepass
	// counts and the counts the kernels bump directly land in one place;
	// sumVariants folds them into Explain after each run. Heap-allocated so
	// the evaluator's pointer survives a reallocation of the states slice.
	ctr *vec.Counters
	// pf sinks the values returned by the software-prefetch Touch loops so
	// the loads stay live; per-worker, written once per tile.
	pf uint64
	*exec.Scratch
}

// newWorkerState allocates one worker's scratch set.
func newWorkerState() workerState {
	ctr := &vec.Counters{}
	ev := expr.NewEvaluator()
	ev.SetCounters(ctr)
	return workerState{ev: ev, ctr: ctr, Scratch: exec.NewScratch()}
}

// fillCmp evaluates the (possibly nil) filter for one tile into s.Cmp.
func (s *workerState) fillCmp(filter expr.Expr, base, length int) {
	if filter != nil {
		s.ev.EvalBool(filter, base, length, s.Cmp)
	} else {
		vec.Fill(s.Cmp[:length], 1)
	}
}

// Sentinel errors for query-shape failures. They are wrapped with %w so
// that callers — including ones draining errors surfaced from parallel
// workers — can test with errors.Is.
var (
	// ErrNoTable reports a query referencing an unknown table.
	ErrNoTable = errors.New("no such table")
	// ErrNoColumn reports a query referencing an unknown column.
	ErrNoColumn = errors.New("no such column")
)

func errNoTable(name string) error {
	return fmt.Errorf("core: table %q: %w", name, ErrNoTable)
}

func errNoColumn(table, column string) error {
	return fmt.Errorf("core: table %q column %q: %w", table, column, ErrNoColumn)
}

// sampleSelectivity estimates a predicate's selectivity on up to maxSample
// rows spread across the table. The filter must already be bound.
func sampleSelectivity(filter expr.Expr, rows, maxSample int) float64 {
	if filter == nil {
		return 1.0
	}
	if rows == 0 {
		return 0
	}
	step := 1
	if rows > maxSample {
		step = rows / maxSample
	}
	n, hits := 0, 0
	for i := 0; i < rows; i += step {
		n++
		if expr.Eval(filter, i) != 0 {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// sampleGroupKeys folds up to maxSample of the bound key expression's
// values into seen and returns how many rows it sampled. The append path
// reuses it to merge a delta's keys into an existing distinct-sample.
func sampleGroupKeys(key expr.Expr, rows, maxSample int, seen map[int64]struct{}) int {
	step := 1
	if rows > maxSample {
		step = rows / maxSample
	}
	n := 0
	for i := 0; i < rows; i += step {
		n++
		seen[expr.Eval(key, i)] = struct{}{}
	}
	return n
}

// estimateGroups turns a distinct-sample (d distinct keys in n sampled of
// rows total) into a group-count estimate; if the sample saturates, the
// estimate scales linearly.
func estimateGroups(d, n, rows int) int {
	if d > n*3/4 {
		return d * (rows / max(n, 1))
	}
	return d
}

// sampleGroups estimates the number of distinct keys of a bound column
// expression.
func sampleGroups(key expr.Expr, rows, maxSample int) int {
	if rows == 0 {
		return 1
	}
	seen := map[int64]struct{}{}
	n := sampleGroupKeys(key, rows, maxSample, seen)
	return estimateGroups(len(seen), n, rows)
}

// aggSlotBytes approximates ht.AggTable's per-group footprint.
func aggSlotBytes(nAccs int) int { return 8 + 1 + 8*nAccs + 8 + 1 }

// forcedPartitions is the minimum fan-out under PartitionOn, so forced
// runs exercise a real multi-partition shape even on tables the budget
// would leave unpartitioned.
const forcedPartitions = 16

// choosePartition resolves a partition mode against the cost model for a
// group-by of rows tuples into a table of htBytes. It returns whether to
// run the radix-partitioned path, the fan-out, and the modeled partitioned
// cost (meaningful whenever parts > 1, so callers can record it in
// Explain.Costs even when the direct path wins). The mode comes from the
// plan's environment snapshot, not the live engine, so a replay validity
// check and the decision it guards always agree.
func choosePartition(mode PartitionMode, params cost.Params, rows int, comp float64, htBytes int, directCost float64) (bool, int, float64) {
	switch mode {
	case PartitionOff:
		return false, 0, 0
	case PartitionOn:
		parts := params.PartitionsFor(htBytes)
		if parts < forcedPartitions {
			parts = forcedPartitions
		}
		return true, parts, params.PartitionedGroup(rows, comp, htBytes, parts)
	}
	use, parts, c := params.ChoosePartitionedGroup(rows, comp, htBytes, directCost)
	return use, parts, c
}
