// Package micro implements the paper's microbenchmark (Figure 7): the
// 100M-tuple table R and dimension table S, and queries Q1-Q5, each
// hand-specialized per code generation strategy exactly as the paper
// hand-coded each strategy in C. These kernels regenerate Figures 8-12.
//
// Schema (Figure 7a):
//
//	R: r_a int8 (card 100), r_b int8 (card 100), r_c int8..int32
//	   (card 10 / 1K / 100K / 10M), r_x int8 (card 100), r_y int8,
//	   r_fk int32 -> S
//	S: s_pk int32 (dense 0..|S|), s_x int8 (card 100)
//
// All values are uniformly distributed (the paper's worst case for hash
// tables). One documented deviation: the paper's figures sweep selectivity
// 0-100% on the x-axis while every query carries the conjunct "and r_y=1";
// for SEL to *be* the selectivity, r_y is generated as the constant 1, so
// the conjunct exercises compound-predicate evaluation without filtering.
// Set YHalf to generate r_y uniform over {0,1} instead.
package micro

// splitmix64 is the deterministic PRNG used by all generators in this
// repository: tiny state, excellent distribution, sequence-stable across
// Go versions (unlike math/rand's default source).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}

// Config sizes a microbenchmark dataset.
type Config struct {
	NR    int  // tuples in R (paper: 100M)
	NS    int  // tuples in S (paper: 1K or 1M)
	CCard int  // cardinality of group-by key r_c (paper: 10 .. 10M)
	YHalf bool // generate r_y in {0,1} instead of constant 1
	Seed  uint64
}

// DefaultConfig returns a laptop-scale configuration preserving the
// paper's regimes (see DESIGN.md section 2, substitution 5).
func DefaultConfig() Config {
	return Config{NR: 2_000_000, NS: 1_000, CCard: 1_000, Seed: 1}
}

// Data is a generated microbenchmark dataset. Columns are exposed as typed
// slices because the hand-specialized kernels, like generated code, are
// written against the physical schema.
type Data struct {
	Cfg Config

	// R columns. A and B are in [1,100] so they can be divisors.
	A, B []int8
	// X is in [0,100): the predicate r_x < SEL selects SEL percent.
	X []int8
	// Y is 1 (or {0,1} with YHalf).
	Y []int8
	// C is the group-by key in [0, CCard), widened to int32 for all
	// cardinalities; kernels that exploit narrow keys re-narrow locally.
	C []int32
	// FK indexes into S: S's primary key is dense, so r_fk doubles as the
	// foreign-key index position (Section III-D).
	FK []int32

	// S columns.
	SPK []int32
	SX  []int8
}

// Generate builds a dataset deterministically from cfg.
func Generate(cfg Config) *Data {
	rng := splitmix64(cfg.Seed)
	d := &Data{
		Cfg: cfg,
		A:   make([]int8, cfg.NR),
		B:   make([]int8, cfg.NR),
		X:   make([]int8, cfg.NR),
		Y:   make([]int8, cfg.NR),
		C:   make([]int32, cfg.NR),
		FK:  make([]int32, cfg.NR),
		SPK: make([]int32, cfg.NS),
		SX:  make([]int8, cfg.NS),
	}
	for i := 0; i < cfg.NR; i++ {
		d.A[i] = int8(rng.intn(100) + 1)
		d.B[i] = int8(rng.intn(100) + 1)
		d.X[i] = int8(rng.intn(100))
		if cfg.YHalf {
			d.Y[i] = int8(rng.intn(2))
		} else {
			d.Y[i] = 1
		}
		d.C[i] = int32(rng.intn(cfg.CCard))
		d.FK[i] = int32(rng.intn(cfg.NS))
	}
	for i := 0; i < cfg.NS; i++ {
		d.SPK[i] = int32(i)
		d.SX[i] = int8(rng.intn(100))
	}
	return d
}

// Op selects the arithmetic operator of micro Q1 (Figure 8's OP
// substitution parameter).
type Op int

// Q1 operators.
const (
	OpMul Op = iota // memory-bound configuration (Figure 8a)
	OpDiv           // compute-bound configuration (Figure 8b)
)

// String returns the SQL spelling.
func (o Op) String() string {
	if o == OpMul {
		return "*"
	}
	return "/"
}

// Col selects the reused attribute of micro Q3 (Figure 10's COL
// substitution parameter).
type Col int

// Q3 column choices.
const (
	ColA Col = iota // sum(r_x * r_a): only r_x reused (Figure 10a)
	ColY            // sum(r_x * r_y): both predicate attributes reused (Figure 10b)
)

// String names the column.
func (c Col) String() string {
	if c == ColA {
		return "r_a"
	}
	return "r_y"
}
