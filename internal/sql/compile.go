package sql

import (
	"fmt"
	"strings"

	"github.com/reprolab/swole/internal/expr"
	"github.com/reprolab/swole/internal/plan"
	"github.com/reprolab/swole/internal/storage"
)

// Compile parses a SELECT statement and builds a logical plan against db.
// Supported shapes: any single-block SELECT over one table, or over up to
// four tables connected by equalities on registered foreign keys (each FK
// side probes its parent, following the repository's join convention; the
// join graph is a tree rooted at the one table that is never a parent).
func Compile(src string, db *storage.Database) (plan.Node, error) {
	s, err := parse(src)
	if err != nil {
		return nil, err
	}
	return compileStmt(s, db)
}

// maxTables bounds the FROM list; join trees are left-deep FK chains.
const maxTables = 4

// Parse exposes the bare parser for tests and tooling; most callers want
// Compile.
func Parse(src string) error {
	_, err := parse(src)
	return err
}

func compileStmt(s *stmt, db *storage.Database) (plan.Node, error) {
	if len(s.tables) == 0 || len(s.tables) > maxTables {
		return nil, fmt.Errorf("sql: %d tables unsupported (1 to %d)", len(s.tables), maxTables)
	}
	owners := map[string]string{} // column -> table
	for _, tn := range s.tables {
		t := db.Table(tn)
		if t == nil {
			return nil, fmt.Errorf("sql: no table %s", tn)
		}
		for _, c := range t.Columns {
			if prev, dup := owners[c.Name]; dup {
				return nil, fmt.Errorf("sql: column %s exists in both %s and %s", c.Name, prev, tn)
			}
			owners[c.Name] = tn
		}
	}

	var root plan.Node
	if len(s.tables) == 1 {
		root = &plan.Scan{Table: s.tables[0], Filter: s.where}
	} else {
		node, err := compileJoin(s, db, owners)
		if err != nil {
			return nil, err
		}
		root = node
	}

	root, outCols, err := compileSelect(s, root, owners)
	if err != nil {
		return nil, err
	}

	if len(s.orderBy) > 0 || s.limit > 0 {
		keys := make([]plan.SortKey, len(s.orderBy))
		for i, o := range s.orderBy {
			if !contains(outCols, o.col) {
				return nil, fmt.Errorf("sql: ORDER BY column %s not in select list", o.col)
			}
			keys[i] = plan.SortKey{Col: o.col, Desc: o.desc}
		}
		root = &plan.Sort{Input: root, Keys: keys, Limit: s.limit}
	}
	return root, nil
}

// joinEdge is one oriented FK equality: child.fk = parent.pk.
type joinEdge struct {
	child, fk, parent, pk string
}

// compileJoin splits the WHERE conjuncts of a multi-table query into
// per-table filters, oriented FK join equalities, and a residual, then
// assembles a left-deep join tree. The root (probe) table is the one table
// that is never the parent of a used FK edge; each remaining table must be
// reachable from it through registered foreign keys.
func compileJoin(s *stmt, db *storage.Database, owners map[string]string) (plan.Node, error) {
	filters := map[string][]expr.Expr{}
	var residual []expr.Expr
	var edges []joinEdge
	hasParent := map[string]bool{}

	conjuncts := flattenAnd(s.where)
	for _, c := range conjuncts {
		// Oriented FK join equality?
		if eq, ok := c.(*expr.Cmp); ok && eq.Op == expr.EQ {
			lc, lok := eq.L.(*expr.Col)
			rc, rok := eq.R.(*expr.Col)
			if lok && rok {
				lt, rt := owners[lc.Name], owners[rc.Name]
				if lt != "" && rt != "" && lt != rt {
					var e joinEdge
					switch {
					case db.FK(lt, lc.Name, rt, rc.Name) != nil:
						e = joinEdge{child: lt, fk: lc.Name, parent: rt, pk: rc.Name}
					case db.FK(rt, rc.Name, lt, lc.Name) != nil:
						e = joinEdge{child: rt, fk: rc.Name, parent: lt, pk: lc.Name}
					default:
						return nil, fmt.Errorf("sql: no foreign key registered between %s.%s and %s.%s", lt, lc.Name, rt, rc.Name)
					}
					if hasParent[e.parent] {
						// A second equality into an already-joined parent
						// is an extra condition, not a new edge.
						residual = append(residual, c)
						continue
					}
					hasParent[e.parent] = true
					edges = append(edges, e)
					continue
				}
			}
		}
		if t := tablesOf(c, owners); t != "" {
			filters[t] = append(filters[t], c)
		} else {
			residual = append(residual, c)
		}
	}

	// Root: the unique FROM table that is never a parent.
	root := ""
	for _, t := range s.tables {
		if !hasParent[t] {
			if root != "" {
				return nil, fmt.Errorf("sql: join graph is not connected: both %s and %s lack a join condition", root, t)
			}
			root = t
		}
	}
	if root == "" {
		return nil, fmt.Errorf("sql: join graph has no root (cyclic foreign keys)")
	}

	// Order edges so each child is already attached, then nest left-deep.
	attached := map[string]bool{root: true}
	var node plan.Node = &plan.Scan{Table: root, Filter: andAll(filters[root])}
	remaining := append([]joinEdge(nil), edges...)
	for len(remaining) > 0 {
		progress := false
		for i, e := range remaining {
			if !attached[e.child] {
				continue
			}
			node = &plan.Join{
				Probe:    node,
				Build:    &plan.Scan{Table: e.parent, Filter: andAll(filters[e.parent])},
				ProbeKey: e.fk,
				BuildKey: e.pk,
			}
			attached[e.parent] = true
			remaining = append(remaining[:i], remaining[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("sql: join graph is not connected to table %s", remaining[0].child)
		}
	}
	for _, t := range s.tables {
		if !attached[t] {
			return nil, fmt.Errorf("sql: table %s has no join condition", t)
		}
	}
	if len(residual) > 0 {
		top, ok := node.(*plan.Join)
		if !ok {
			return nil, fmt.Errorf("sql: multi-table query requires an equality join condition")
		}
		top.Residual = andAll(residual)
	}
	if _, ok := node.(*plan.Join); !ok {
		return nil, fmt.Errorf("sql: multi-table query requires an equality join condition")
	}
	return node, nil
}

// compileSelect adds aggregation/projection and returns the output column
// names.
func compileSelect(s *stmt, input plan.Node, owners map[string]string) (plan.Node, []string, error) {
	hasAgg := false
	for _, it := range s.items {
		if it.agg != "" {
			hasAgg = true
		}
	}
	names := make([]string, len(s.items))
	for i, it := range s.items {
		switch {
		case it.as != "":
			names[i] = it.as
		case it.agg != "":
			names[i] = fmt.Sprintf("%s_%d", it.agg, i)
		default:
			if c, ok := it.arg.(*expr.Col); ok {
				names[i] = c.Name
			} else {
				names[i] = fmt.Sprintf("col_%d", i)
			}
		}
	}

	if !hasAgg {
		if len(s.groupBy) > 0 {
			return nil, nil, fmt.Errorf("sql: GROUP BY without aggregates")
		}
		if s.having != nil {
			return nil, nil, fmt.Errorf("sql: HAVING without aggregates")
		}
		exprs := make([]plan.NamedExpr, len(s.items))
		for i, it := range s.items {
			exprs[i] = plan.NamedExpr{Expr: it.arg, As: names[i]}
		}
		return &plan.Map{Input: input, Exprs: exprs}, names, nil
	}

	funcs := map[string]plan.AggFunc{
		"sum": plan.Sum, "count": plan.Count, "avg": plan.Avg,
		"min": plan.Min, "max": plan.Max,
	}
	agg := &plan.Aggregate{Input: input, GroupBy: s.groupBy, Having: s.having}
	for i, it := range s.items {
		if it.agg == "" {
			c, ok := it.arg.(*expr.Col)
			if !ok || !contains(s.groupBy, c.Name) {
				return nil, nil, fmt.Errorf("sql: non-aggregate select item %q must be a GROUP BY column", names[i])
			}
			continue
		}
		spec := plan.AggSpec{Func: funcs[it.agg], As: names[i]}
		if !it.star {
			spec.Arg = it.arg
		}
		agg.Aggs = append(agg.Aggs, spec)
	}
	// Project in SELECT order (the Aggregate node emits keys first); hidden
	// HAVING aggregates are aggregated above but projected away here.
	var exprs []plan.NamedExpr
	var outCols []string
	for i, it := range s.items {
		if it.hidden {
			continue
		}
		if it.agg == "" {
			c := it.arg.(*expr.Col)
			exprs = append(exprs, plan.NamedExpr{Expr: expr.NewCol(c.Name), As: names[i]})
		} else {
			exprs = append(exprs, plan.NamedExpr{Expr: expr.NewCol(names[i]), As: names[i]})
		}
		outCols = append(outCols, names[i])
	}
	return &plan.Map{Input: agg, Exprs: exprs}, outCols, nil
}

// flattenAnd splits nested conjunctions into a list.
func flattenAnd(e expr.Expr) []expr.Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*expr.Logic); ok && l.Op == expr.And {
		var out []expr.Expr
		for _, a := range l.Args {
			out = append(out, flattenAnd(a)...)
		}
		return out
	}
	return []expr.Expr{e}
}

func andAll(list []expr.Expr) expr.Expr {
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	default:
		return &expr.Logic{Op: expr.And, Args: list}
	}
}

// tablesOf returns the single table whose columns e references, or "" if
// it references several (or none).
func tablesOf(e expr.Expr, owners map[string]string) string {
	t := ""
	for _, c := range expr.Cols(e) {
		o := owners[c]
		if o == "" {
			return ""
		}
		if t == "" {
			t = o
		} else if t != o {
			return ""
		}
	}
	return t
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if strings.EqualFold(v, s) {
			return true
		}
	}
	return false
}
