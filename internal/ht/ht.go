// Package ht implements the open-addressing hash tables used by every
// strategy in this repository: AggTable for group-by aggregation (including
// the reserved throwaway entry required by SWOLE's key masking and the
// validity bookkeeping required by value masking, paper Section III-B),
// JoinTable for equijoin build sides, and SetTable for semijoins.
//
// All tables use 64-bit keys with a Murmur3-style finalizer hash and linear
// probing over power-of-two capacities. Multi-attribute keys are packed into
// a single int64 by the callers (all group-by and join keys in the paper's
// workloads are small dictionary codes or dense surrogate keys).
package ht

import "math"

// NullKey is the reserved key used by key masking (Section III-B): tuples
// filtered by a pulled-up predicate have their group-by key masked to
// NullKey, which maps to a dedicated throwaway entry that stays cached.
const NullKey int64 = math.MinInt64

// hash64 is the 64-bit finalizer from MurmurHash3, a strong cheap mixer.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// slot states for tables that support deletion.
const (
	slotEmpty byte = iota
	slotFull
	slotTombstone
)

// nextPow2 returns the smallest power of two >= n (minimum 8).
func nextPow2(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// maxHint caps cardinality hints. 2^40 groups is far past addressable
// memory for any slot layout in this package; the cap exists so that a
// corrupt or adversarial hint near MaxInt cannot overflow the hint*2
// sizing arithmetic below into a tiny (or negative) capacity.
const maxHint = 1 << 40

// hintCap maps a caller-supplied cardinality hint to a slot capacity:
// twice the hint, rounded up to a power of two. Non-positive hints (an
// empty table, a zero or failed estimate) clamp to zero explicitly and
// get nextPow2's minimum capacity of 8 rather than relying on what a
// negative product happens to do.
func hintCap(hint int) int {
	if hint < 0 {
		hint = 0
	}
	if hint > maxHint {
		hint = maxHint
	}
	return nextPow2(hint * 2)
}
