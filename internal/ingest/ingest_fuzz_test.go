package ingest

import (
	"encoding/csv"
	"errors"
	"io"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"github.com/reprolab/swole/internal/storage"
)

// Property test: the generated kernel must agree row for row with a naive
// reference parser built on encoding/csv plus strconv/math-big field
// decoding, over random schemas and documents containing quoted fields
// (embedded commas, quotes, newlines), empty lines, and malformed rows,
// under both error policies.

// --- reference field decoders (independent implementations) ---

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func refInt(s string) (int64, bool) {
	v, err := strconv.ParseInt(s, 10, 64)
	return v, err == nil
}

func refDecimal(s string) (int64, bool) {
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	wholeStr, fracStr, hasDot := strings.Cut(s, ".")
	if !allDigits(wholeStr) {
		return 0, false
	}
	scaled, ok := new(big.Int).SetString(wholeStr, 10)
	if !ok {
		return 0, false
	}
	scaled.Mul(scaled, big.NewInt(100))
	if hasDot {
		if len(fracStr) < 1 || len(fracStr) > 2 || !allDigits(fracStr) {
			return 0, false
		}
		f, _ := strconv.Atoi(fracStr)
		if len(fracStr) == 1 {
			f *= 10
		}
		scaled.Add(scaled, big.NewInt(int64(f)))
	}
	if neg {
		scaled.Neg(scaled)
	}
	if !scaled.IsInt64() {
		return 0, false
	}
	return scaled.Int64(), true
}

func refDate(s string) (int64, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return 0, false
	}
	var v [3]int
	for i, p := range parts {
		if len(p) > 8 || !allDigits(p) {
			return 0, false
		}
		v[i], _ = strconv.Atoi(p)
	}
	if v[1] < 1 || v[1] > 12 || v[2] < 1 || v[2] > 31 {
		return 0, false
	}
	return int64(storage.DateFromYMD(v[0], v[1], v[2])), true
}

func refDecode(f Field, s string) (int64, bool) {
	switch f.Kind {
	case Int64:
		return refInt(s)
	case Decimal:
		return refDecimal(s)
	case Date:
		return refDate(s)
	default:
		return f.Dict.Code(s)
	}
}

// refParse runs the naive reference parser: encoding/csv record splitting,
// then per-field decoding. It returns the accepted rows in column-major
// order and the number of rejected rows, stopping at the first bad row
// when strict.
func refParse(t *testing.T, schema Schema, doc []byte, strict bool) (cols [][]int64, rejected int) {
	t.Helper()
	cols = make([][]int64, len(schema))
	r := csv.NewReader(strings.NewReader(string(doc)))
	r.FieldsPerRecord = -1
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return cols, rejected
		}
		if err != nil {
			t.Fatalf("reference parser rejected generated doc: %v\n%q", err, doc)
		}
		bad := len(rec) != len(schema)
		vals := make([]int64, 0, len(schema))
		if !bad {
			for i, f := range schema {
				v, ok := refDecode(f, rec[i])
				if !ok {
					bad = true
					break
				}
				vals = append(vals, v)
			}
		}
		if bad {
			rejected++
			if strict {
				return cols, rejected
			}
			continue
		}
		for i, v := range vals {
			cols[i] = append(cols[i], v)
		}
	}
}

// --- random document generation ---

var wordAlphabet = []rune("abcXYZ09 ,\"\néß")

func randWord(rng *rand.Rand) string {
	n := rng.Intn(7)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(wordAlphabet[rng.Intn(len(wordAlphabet))])
	}
	return sb.String()
}

func randSchema(rng *rand.Rand) Schema {
	n := 1 + rng.Intn(5)
	s := make(Schema, n)
	for i := range s {
		f := Field{Name: "f" + strconv.Itoa(i), Kind: Kind(rng.Intn(4))}
		if f.Kind == Dict {
			vocab := make([]string, 1+rng.Intn(6))
			for j := range vocab {
				vocab[j] = randWord(rng)
			}
			f.Dict = storage.NewDict(vocab)
		}
		s[i] = f
	}
	return s
}

// randValue renders one field value, usually valid for its kind.
func randValue(rng *rand.Rand, f Field) string {
	if rng.Intn(10) == 0 { // deliberately suspicious value
		bad := []string{"", "abc", "1.2.3", "12x", "2020-13-99", "99999999999999999999", "1.234", "-", "+", "§missing§", "0x10"}
		return bad[rng.Intn(len(bad))]
	}
	switch f.Kind {
	case Int64:
		return strconv.FormatInt(rng.Int63n(1<<40)-(1<<39), 10)
	case Decimal:
		switch rng.Intn(3) {
		case 0:
			return strconv.FormatInt(rng.Int63n(10000)-5000, 10)
		case 1:
			return strconv.FormatInt(rng.Int63n(1000)-500, 10) + "." + strconv.Itoa(rng.Intn(10))
		default:
			return strconv.FormatInt(rng.Int63n(1000)-500, 10) + "." + string(rune('0'+rng.Intn(10))) + string(rune('0'+rng.Intn(10)))
		}
	case Date:
		return strconv.Itoa(rng.Intn(3000)) + "-" + strconv.Itoa(1+rng.Intn(12)) + "-" + strconv.Itoa(1+rng.Intn(31))
	default:
		return f.Dict.Value(rng.Intn(f.Dict.Len()))
	}
}

// renderField quotes when the content requires it (or randomly, to
// exercise the quoted path on plain values).
func renderField(rng *rand.Rand, v string) string {
	if strings.ContainsAny(v, ",\"\n\r") || rng.Intn(10) == 0 {
		return `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
	}
	return v
}

func randDoc(rng *rand.Rand, schema Schema) []byte {
	var sb strings.Builder
	rows := rng.Intn(30)
	for r := 0; r < rows; r++ {
		if rng.Intn(10) == 0 {
			sb.WriteString("\n") // empty line
		}
		n := len(schema)
		switch rng.Intn(12) { // occasional wrong field count
		case 0:
			n--
		case 1:
			n++
		}
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			f := Field{Kind: Int64}
			if i < len(schema) {
				f = schema[i]
			}
			parts = append(parts, renderField(rng, randValue(rng, f)))
		}
		sb.WriteString(strings.Join(parts, ","))
		if r == rows-1 && rng.Intn(2) == 0 {
			break // final row without trailing newline
		}
		sb.WriteString("\n")
	}
	return []byte(sb.String())
}

func compareCols(t *testing.T, schema Schema, doc []byte, want, got [][]int64) {
	t.Helper()
	for c := range schema {
		if len(want[c]) != len(got[c]) {
			t.Fatalf("col %d: kernel %d rows, reference %d\ndoc: %q", c, len(got[c]), len(want[c]), doc)
		}
		for i := range want[c] {
			if want[c][i] != got[c][i] {
				t.Fatalf("col %d row %d: kernel %d, reference %d\ndoc: %q", c, i, got[c][i], want[c][i], doc)
			}
		}
	}
}

func TestKernelMatchesReferenceParser(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD0C5))
	for trial := 0; trial < 300; trial++ {
		schema := randSchema(rng)
		doc := randDoc(rng, schema)

		wantCols, wantRej := refParse(t, schema, doc, false)
		k, err := NewKernel(schema, Skip)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Parse(doc); err != nil {
			t.Fatalf("skip policy returned error: %v\ndoc: %q", err, doc)
		}
		if k.Rejected() != wantRej {
			t.Fatalf("skip: kernel rejected %d, reference %d\ndoc: %q", k.Rejected(), wantRej, doc)
		}
		compareCols(t, schema, doc, wantCols, k.Columns())

		strictCols, strictRej := refParse(t, schema, doc, true)
		ks, err := NewKernel(schema, Strict)
		if err != nil {
			t.Fatal(err)
		}
		err = ks.Parse(doc)
		if (err != nil) != (strictRej > 0) {
			t.Fatalf("strict: kernel err %v, reference rejected %d\ndoc: %q", err, strictRej, doc)
		}
		compareCols(t, schema, doc, strictCols, ks.Columns())
	}
}

// FuzzKernel feeds arbitrary bytes through the kernel and checks the
// structural invariants that must hold for any input: no panics, equal
// column lengths matching the accepted count, and chunk-boundary
// independence (splitting the input across two Writes decodes the same
// batch as one Parse).
func FuzzKernel(f *testing.F) {
	f.Add([]byte("1,2.50,2020-01-02,red\n-7,3,1999-12-31,blue\n"), uint16(7))
	f.Add([]byte("1,\"2.50\",2020-01-02,\"re\"\"d\"\n"), uint16(3))
	f.Add([]byte("\n\r\n1,2,3\nx,y\n"), uint16(1))
	f.Add([]byte("1,2.50,2020-01-02,\"red"), uint16(21))
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		schema := microSchema()
		whole, _ := NewKernel(schema, Skip)
		if err := whole.Parse(data); err != nil {
			t.Fatalf("skip policy returned error: %v", err)
		}
		for c := range schema {
			if len(whole.Columns()[c]) != whole.Accepted() {
				t.Fatalf("col %d has %d rows, accepted %d", c, len(whole.Columns()[c]), whole.Accepted())
			}
		}
		if len(whole.Errors()) > MaxRowErrors {
			t.Fatalf("%d recorded errors exceed cap", len(whole.Errors()))
		}

		split := int(cut) % (len(data) + 1)
		chunked, _ := NewKernel(schema, Skip)
		chunked.Write(data[:split])
		chunked.Write(data[split:])
		if err := chunked.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if chunked.Accepted() != whole.Accepted() || chunked.Rejected() != whole.Rejected() {
			t.Fatalf("chunked accepted/rejected %d/%d, whole %d/%d (split %d)",
				chunked.Accepted(), chunked.Rejected(), whole.Accepted(), whole.Rejected(), split)
		}
		for c := range schema {
			for i := range whole.Columns()[c] {
				if chunked.Columns()[c][i] != whole.Columns()[c][i] {
					t.Fatalf("chunked col %d row %d differs (split %d)", c, i, split)
				}
			}
		}
	})
}
