package volcano

import (
	"math/rand"
	"testing"

	"github.com/reprolab/swole/internal/expr"
	"github.com/reprolab/swole/internal/plan"
	"github.com/reprolab/swole/internal/storage"
)

// testDB builds a tiny R (fact) / S (dim) database with known contents.
//
//	R: r_fk in [0,4), r_x in [0,10), r_a small ints, r_s strings
//	S: s_pk = 0..3, s_x = pk*10, s_name strings
func testDB(t *testing.T, nR int) *storage.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	fk := make([]int64, nR)
	x := make([]int64, nR)
	a := make([]int64, nR)
	s := make([]string, nR)
	words := []string{"red apple", "green pear", "red plum", "blue berry"}
	for i := 0; i < nR; i++ {
		fk[i] = int64(rng.Intn(4))
		x[i] = int64(rng.Intn(10))
		a[i] = int64(rng.Intn(100))
		s[i] = words[rng.Intn(len(words))]
	}
	r := storage.MustNewTable("r",
		storage.Compress("r_fk", fk, storage.LogInt),
		storage.Compress("r_x", x, storage.LogInt),
		storage.Compress("r_a", a, storage.LogInt),
		storage.NewStrings("r_s", s),
	)
	sTab := storage.MustNewTable("s",
		storage.Compress("s_pk", []int64{0, 1, 2, 3}, storage.LogInt),
		storage.Compress("s_x", []int64{0, 10, 20, 30}, storage.LogInt),
		storage.NewStrings("s_name", []string{"zero", "one", "two", "three"}),
	)
	db := storage.NewDatabase()
	db.AddTable(r)
	db.AddTable(sTab)
	if err := db.AddFKIndex("r", "r_fk", "s", "s_pk"); err != nil {
		t.Fatal(err)
	}
	return db
}

func lt(col string, v int64) expr.Expr {
	return &expr.Cmp{Op: expr.LT, L: expr.NewCol(col), R: &expr.Const{Val: v}}
}

func TestScanFilterCount(t *testing.T) {
	db := testDB(t, 500)
	res, err := Run(&plan.Scan{Table: "r", Filter: lt("r_x", 5)}, db)
	if err != nil {
		t.Fatal(err)
	}
	// Reference count.
	xc := db.MustTable("r").MustColumn("r_x")
	want := 0
	for i := 0; i < 500; i++ {
		if xc.Get(i) < 5 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("got %d rows, want %d", len(res.Rows), want)
	}
	// Separate Filter node must agree with scan-embedded filter.
	res2, err := Run(&plan.Filter{Input: &plan.Scan{Table: "r"}, Pred: lt("r_x", 5)}, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EqualRows(res2.Rows) {
		t.Error("Filter node disagrees with scan filter")
	}
}

func TestScalarAggregate(t *testing.T) {
	db := testDB(t, 300)
	q := &plan.Aggregate{
		Input: &plan.Scan{Table: "r", Filter: lt("r_x", 5)},
		Aggs: []plan.AggSpec{
			{Func: plan.Sum, Arg: expr.NewCol("r_a"), As: "s"},
			{Func: plan.Count, As: "c"},
			{Func: plan.Min, Arg: expr.NewCol("r_a"), As: "mn"},
			{Func: plan.Max, Arg: expr.NewCol("r_a"), As: "mx"},
			{Func: plan.Avg, Arg: expr.NewCol("r_a"), As: "av"},
		},
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// Reference.
	r := db.MustTable("r")
	xc, ac := r.MustColumn("r_x"), r.MustColumn("r_a")
	var sum, cnt, mn, mx int64
	mn = 1 << 62
	mx = -(1 << 62)
	for i := 0; i < r.Rows(); i++ {
		if xc.Get(i) >= 5 {
			continue
		}
		v := ac.Get(i)
		sum += v
		cnt++
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	row := res.Rows[0]
	if row[0] != sum || row[1] != cnt || row[2] != mn || row[3] != mx {
		t.Errorf("got %v, want sum=%d cnt=%d mn=%d mx=%d", row, sum, cnt, mn, mx)
	}
	if row[4] != sum*storage.DecimalOne/cnt {
		t.Errorf("avg=%d, want %d", row[4], sum*storage.DecimalOne/cnt)
	}
}

func TestEmptyScalarAggregate(t *testing.T) {
	db := testDB(t, 100)
	q := &plan.Aggregate{
		Input: &plan.Scan{Table: "r", Filter: lt("r_x", -1)},
		Aggs: []plan.AggSpec{
			{Func: plan.Sum, Arg: expr.NewCol("r_a"), As: "s"},
			{Func: plan.Count, As: "c"},
			{Func: plan.Avg, Arg: expr.NewCol("r_a"), As: "av"},
		},
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != 0 || res.Rows[0][1] != 0 || res.Rows[0][2] != 0 {
		t.Errorf("empty aggregate: %v", res.Rows)
	}
}

func TestGroupByAggregate(t *testing.T) {
	db := testDB(t, 400)
	q := &plan.Aggregate{
		Input:   &plan.Scan{Table: "r"},
		GroupBy: []string{"r_fk"},
		Aggs:    []plan.AggSpec{{Func: plan.Sum, Arg: expr.NewCol("r_a"), As: "s"}},
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Reference with a map.
	r := db.MustTable("r")
	ref := map[int64]int64{}
	for i := 0; i < r.Rows(); i++ {
		ref[r.MustColumn("r_fk").Get(i)] += r.MustColumn("r_a").Get(i)
	}
	if len(res.Rows) != len(ref) {
		t.Fatalf("groups=%d, want %d", len(res.Rows), len(ref))
	}
	for _, row := range res.Rows {
		if ref[row[0]] != row[1] {
			t.Errorf("group %d: sum=%d, want %d", row[0], row[1], ref[row[0]])
		}
	}
}

func TestMultiKeyGroupBy(t *testing.T) {
	db := testDB(t, 400)
	q := &plan.Aggregate{
		Input:   &plan.Scan{Table: "r"},
		GroupBy: []string{"r_fk", "r_x"},
		Aggs:    []plan.AggSpec{{Func: plan.Count, As: "c"}},
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, row := range res.Rows {
		total += row[2]
	}
	if total != 400 {
		t.Errorf("counts sum to %d, want 400", total)
	}
}

func TestInnerJoin(t *testing.T) {
	db := testDB(t, 300)
	q := &plan.Aggregate{
		Input: &plan.Join{
			Probe:    &plan.Scan{Table: "r", Filter: lt("r_x", 5)},
			Build:    &plan.Scan{Table: "s", Filter: lt("s_x", 25)},
			ProbeKey: "r_fk",
			BuildKey: "s_pk",
		},
		Aggs: []plan.AggSpec{{Func: plan.Sum, Arg: expr.NewCol("r_a"), As: "s"}, {Func: plan.Count, As: "c"}},
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	r := db.MustTable("r")
	var sum, cnt int64
	for i := 0; i < r.Rows(); i++ {
		if r.MustColumn("r_x").Get(i) < 5 && r.MustColumn("r_fk").Get(i)*10 < 25 {
			sum += r.MustColumn("r_a").Get(i)
			cnt++
		}
	}
	if res.Rows[0][0] != sum || res.Rows[0][1] != cnt {
		t.Errorf("got %v, want sum=%d cnt=%d", res.Rows[0], sum, cnt)
	}
}

func TestJoinResidual(t *testing.T) {
	db := testDB(t, 300)
	// Residual references both sides: r_x < s_x.
	q := &plan.Aggregate{
		Input: &plan.Join{
			Probe:    &plan.Scan{Table: "r"},
			Build:    &plan.Scan{Table: "s"},
			ProbeKey: "r_fk",
			BuildKey: "s_pk",
			Residual: &expr.Cmp{Op: expr.LT, L: expr.NewCol("r_x"), R: expr.NewCol("s_x")},
		},
		Aggs: []plan.AggSpec{{Func: plan.Count, As: "c"}},
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	r := db.MustTable("r")
	var cnt int64
	for i := 0; i < r.Rows(); i++ {
		if r.MustColumn("r_x").Get(i) < r.MustColumn("r_fk").Get(i)*10 {
			cnt++
		}
	}
	if res.Rows[0][0] != cnt {
		t.Errorf("got %d, want %d", res.Rows[0][0], cnt)
	}
}

func TestSemiJoin(t *testing.T) {
	db := testDB(t, 300)
	// Which s rows have at least one r with r_x < 2? Semijoin s against r.
	q := &plan.Join{
		Probe:    &plan.Scan{Table: "s"},
		Build:    &plan.Scan{Table: "r", Filter: lt("r_x", 2)},
		ProbeKey: "s_pk",
		BuildKey: "r_fk",
		Semi:     true,
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	r := db.MustTable("r")
	want := map[int64]bool{}
	for i := 0; i < r.Rows(); i++ {
		if r.MustColumn("r_x").Get(i) < 2 {
			want[r.MustColumn("r_fk").Get(i)] = true
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows=%d, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if !want[row[0]] {
			t.Errorf("unexpected s_pk %d", row[0])
		}
	}
	// Semijoin output schema must not leak build columns.
	if len(res.Fields) != 3 || res.Fields.Index("r_x") >= 0 {
		t.Errorf("semijoin fields: %v", res.Fields)
	}
}

func TestDuplicateBuildKeyRejected(t *testing.T) {
	db := testDB(t, 10)
	// r_fk has duplicates, so using r as inner-join build side must error.
	_, err := Run(&plan.Join{
		Probe: &plan.Scan{Table: "s"}, Build: &plan.Scan{Table: "r"},
		ProbeKey: "s_pk", BuildKey: "r_fk",
	}, db)
	if err == nil {
		t.Error("duplicate build keys accepted in inner join")
	}
}

func TestGroupJoin(t *testing.T) {
	db := testDB(t, 300)
	q := &plan.GroupJoin{
		Build:    &plan.Scan{Table: "s", Filter: lt("s_x", 25)},
		Probe:    &plan.Scan{Table: "r"},
		BuildKey: "s_pk",
		ProbeKey: "r_fk",
		Aggs:     []plan.AggSpec{{Func: plan.Sum, Arg: expr.NewCol("r_a"), As: "s"}, {Func: plan.Count, As: "c"}},
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	r := db.MustTable("r")
	sums := map[int64]int64{}
	counts := map[int64]int64{}
	for i := 0; i < r.Rows(); i++ {
		k := r.MustColumn("r_fk").Get(i)
		if k*10 < 25 {
			sums[k] += r.MustColumn("r_a").Get(i)
			counts[k]++
		}
	}
	if len(res.Rows) != len(sums) {
		t.Fatalf("groups=%d, want %d", len(res.Rows), len(sums))
	}
	sIdx := res.Fields.Index("s")
	cIdx := res.Fields.Index("c")
	for _, row := range res.Rows {
		k := row[0]
		if row[sIdx] != sums[k] || row[cIdx] != counts[k] {
			t.Errorf("group %d: got (%d,%d), want (%d,%d)", k, row[sIdx], row[cIdx], sums[k], counts[k])
		}
	}
}

func TestOuterGroupJoin(t *testing.T) {
	db := testDB(t, 50)
	// Probe filtered to nothing: outer groupjoin still emits all build
	// rows with zero aggregates (the TPC-H Q13 shape).
	q := &plan.GroupJoin{
		Build:    &plan.Scan{Table: "s"},
		Probe:    &plan.Scan{Table: "r", Filter: lt("r_x", -1)},
		BuildKey: "s_pk",
		ProbeKey: "r_fk",
		Aggs:     []plan.AggSpec{{Func: plan.Count, As: "c"}},
		Outer:    true,
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d, want 4", len(res.Rows))
	}
	cIdx := res.Fields.Index("c")
	for _, row := range res.Rows {
		if row[cIdx] != 0 {
			t.Errorf("outer group %d count=%d, want 0", row[0], row[cIdx])
		}
	}
}

func TestMapAndSort(t *testing.T) {
	db := testDB(t, 100)
	q := &plan.Sort{
		Input: &plan.Map{
			Input: &plan.Scan{Table: "r"},
			Exprs: []plan.NamedExpr{
				{Expr: expr.NewCol("r_fk"), As: "k"},
				{Expr: &expr.Arith{Op: expr.Mul, L: expr.NewCol("r_a"), R: &expr.Const{Val: 2}}, As: "double_a"},
			},
		},
		Keys:  []plan.SortKey{{Col: "double_a", Desc: true}},
		Limit: 5,
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("limit not applied: %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1] > res.Rows[i-1][1] {
			t.Error("not sorted descending")
		}
	}
	if res.Fields.Index("double_a") != 1 || len(res.Fields) != 2 {
		t.Errorf("map fields: %v", res.Fields)
	}
}

func TestStringPredicatesThroughJoin(t *testing.T) {
	db := testDB(t, 200)
	// LIKE on the probe side, string equality on the build side.
	q := &plan.Aggregate{
		Input: &plan.Join{
			Probe:    &plan.Scan{Table: "r", Filter: &expr.Like{X: expr.NewCol("r_s"), Pattern: "red%"}},
			Build:    &plan.Scan{Table: "s", Filter: &expr.Cmp{Op: expr.NE, L: expr.NewCol("s_name"), R: &expr.StrConst{Val: "two"}}},
			ProbeKey: "r_fk",
			BuildKey: "s_pk",
		},
		Aggs: []plan.AggSpec{{Func: plan.Count, As: "c"}},
	}
	res, err := Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	r := db.MustTable("r")
	var want int64
	for i := 0; i < r.Rows(); i++ {
		name := r.MustColumn("r_s").GetString(i)
		if len(name) >= 3 && name[:3] == "red" && r.MustColumn("r_fk").Get(i) != 2 {
			want++
		}
	}
	if res.Rows[0][0] != want {
		t.Errorf("got %d, want %d", res.Rows[0][0], want)
	}
}

func TestRunErrors(t *testing.T) {
	db := testDB(t, 10)
	if _, err := Run(&plan.Scan{Table: "nope"}, db); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := Run(&plan.Scan{Table: "r", Filter: lt("nope", 1)}, db); err == nil {
		t.Error("unknown filter column accepted")
	}
	if _, err := Run(&plan.Sort{Input: &plan.Scan{Table: "r"}, Keys: []plan.SortKey{{Col: "zz"}}}, db); err == nil {
		t.Error("unknown sort key accepted")
	}
	if _, err := Run(&plan.Aggregate{Input: &plan.Scan{Table: "r"}, GroupBy: []string{"zz"}, Aggs: []plan.AggSpec{{Func: plan.Count, As: "c"}}}, db); err == nil {
		t.Error("unknown group key accepted")
	}
	if _, err := Run(&plan.Scan{}, db); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	db := testDB(t, 50)
	res, err := Run(&plan.Aggregate{
		Input:   &plan.Scan{Table: "r"},
		GroupBy: []string{"r_fk"},
		Aggs:    []plan.AggSpec{{Func: plan.Count, As: "c"}},
	}, db)
	if err != nil {
		t.Fatal(err)
	}
	sorted := res.SortedRows()
	for i := 1; i < len(sorted); i++ {
		if sorted[i][0] < sorted[i-1][0] {
			t.Error("SortedRows not sorted")
		}
	}
	if !res.EqualRows(res.Rows) {
		t.Error("EqualRows(self) false")
	}
	if res.EqualRows(res.Rows[1:]) {
		t.Error("EqualRows with missing row true")
	}
	col := res.Col("c")
	var total int64
	for _, v := range col {
		total += v
	}
	if total != 50 {
		t.Errorf("counts total %d", total)
	}
	out := res.Format(2)
	if out == "" {
		t.Error("empty Format")
	}
}

func TestPlanFormatAndValidate(t *testing.T) {
	q := &plan.Sort{
		Input: &plan.Aggregate{
			Input:   &plan.Scan{Table: "r", Filter: lt("r_x", 5)},
			GroupBy: []string{"r_fk"},
			Aggs:    []plan.AggSpec{{Func: plan.Sum, Arg: expr.NewCol("r_a"), As: "s"}},
		},
		Keys: []plan.SortKey{{Col: "s", Desc: true}},
	}
	if err := plan.Validate(q); err != nil {
		t.Fatal(err)
	}
	text := plan.Format(q)
	for _, want := range []string{"sort s desc", "agg sum(r_a) as s group by r_fk", "scan r where r_x < 5"} {
		if !contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
