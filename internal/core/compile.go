package core

import (
	"context"
	"math/bits"
	"time"

	"github.com/reprolab/swole/internal/bitmap"
	"github.com/reprolab/swole/internal/cost"
	"github.com/reprolab/swole/internal/exec"
	"github.com/reprolab/swole/internal/ht"
)

// The compiled-plan layer. Every shape executes through one pipeline:
//
//	compile(shape) — validate and bind expressions, sample statistics
//	                 (through the cache), evaluate the cost models, pick
//	                 the technique and the direct-vs-partitioned mode
//	bind            — point the plan's prebuilt kernel closures at the
//	                 chosen technique and size its owned buffers (worker
//	                 scratch, hash tables, bitmaps, partials), reusing
//	                 whatever a previous binding left behind
//	run()           — scan on the engine's persistent worker gang and
//	                 merge per-worker partials; no planning, no
//	                 allocation in the steady state
//
// The three public entry points are thin modes of this pipeline. Prepare*
// is compile-and-keep: the caller owns the plan and re-runs it. One-shot
// (ScalarAgg, GroupAgg, ...) is compile-once-and-cache: the engine keys
// the compiled plan by the query value, and a repeated query whose
// environment and input tables are unchanged replays the plan without
// recompiling — the warm one-shot path allocates nothing but the result
// map for group shapes. *Forced is compile-with-override: the technique
// is the caller's, the scan is sequential (forced runs measure kernel
// character, not parallel speedup), and the plan husk returns to a free
// list afterwards so comparison loops recycle buffers across techniques.
//
// A plan's kernels are closures built once per husk (newScalarPlan and
// friends) that read the plan's current fields, so rebinding a recycled
// husk to a new query never rebuilds closures. Kernels are the single
// implementation per (shape, technique); no other execution path exists.

// kernelFn is a morsel kernel: worker w processes rows [base, base+length).
type kernelFn = func(w, base, length int)

// techAuto asks compile to choose the technique with the cost model;
// any real Technique value forces it.
const techAuto Technique = -1

// planEnv snapshots everything outside the query that a compiled plan
// baked in. A cached plan is replayable only while the engine's current
// environment compares equal to the one it was compiled under.
type planEnv struct {
	workers   int
	morsel    int
	partition PartitionMode
	params    cost.Params
}

func (e *Engine) planEnv() planEnv {
	return planEnv{
		workers:   e.workers(),
		morsel:    e.MorselRows,
		partition: e.Partition,
		params:    e.Params,
	}
}

// planDep pins one input table at the version the plan was compiled
// against.
type planDep struct {
	table string
	ver   uint64
}

// planCore is the part of a compiled plan every shape shares: the engine,
// the environment snapshot, the table dependencies, the Explain record
// the compile filled in, and the per-worker scratch states.
type planCore struct {
	e      *Engine
	env    planEnv
	nw     int  // worker count the kernels run on (1 when seq)
	seq    bool // forced plans scan inline, off the gang
	nd     int
	deps   [2]planDep
	ex     Explain
	states []workerState
}

// bindCore resets the shared plan state for a (re)compile and sizes the
// worker scratch. It returns the number of freshly allocated states.
func (p *planCore) bindCore(e *Engine, env planEnv, seq bool) int {
	p.e, p.env, p.seq = e, env, seq
	p.nw = env.workers
	if seq {
		p.nw = 1
	}
	p.nd = 0
	var fresh int
	p.states, fresh = ensureStates(p.states, p.nw)
	return fresh
}

// dep records an input-table dependency at its current version.
func (p *planCore) dep(table string) {
	p.deps[p.nd] = planDep{table: table, ver: p.e.DB.TableVersion(table)}
	p.nd++
}

// valid reports whether the plan can replay under the given environment:
// same environment snapshot and every input table still at its compiled
// version. Sequential (forced) plans never replay.
func (p *planCore) valid(env planEnv) bool {
	if p.seq || p.env != env {
		return false
	}
	for i := 0; i < p.nd; i++ {
		if p.e.DB.TableVersion(p.deps[i].table) != p.deps[i].ver {
			return false
		}
	}
	return true
}

// dependsOn reports whether the plan reads the named table.
func (p *planCore) dependsOn(table string) bool {
	for i := 0; i < p.nd; i++ {
		if p.deps[i].table == table {
			return true
		}
	}
	return false
}

// ctxErr reports the context's cancellation state; nil contexts (internal
// callers without a deadline) never cancel.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// scan runs a kernel over [0, rows): on the persistent gang normally, or
// inline on this goroutine for sequential (forced) plans. Both forms poll
// the context at morsel granularity, so a canceled scan stops within one
// morsel per worker; callers detect it via ctxErr and must then discard
// the partial state (every run resets its buffers on entry, so pooled
// resources survive an early exit intact). Callers hold e.execMu.
func (p *planCore) scan(ctx context.Context, rows int, kernel kernelFn) {
	if p.seq {
		m := exec.DefaultMorselRows
		for base := 0; base < rows; base += m {
			if ctxErr(ctx) != nil {
				return
			}
			length := rows - base
			if length > m {
				length = m
			}
			kernel(0, base, length)
		}
		return
	}
	p.e.steadyLocked(p.nw).RunCtx(ctx, rows, kernel)
}

// scanTwoPhase runs the partitioned two-phase form (morsel scatter,
// barrier, partition-wise fold) and returns the phase-1 duration, polling
// the context like scan. Callers hold e.execMu.
func (p *planCore) scanTwoPhase(ctx context.Context, rows int, kernel kernelFn, parts int, phase2 func(w, part int)) time.Duration {
	if p.seq {
		start := time.Now()
		p.scan(ctx, rows, kernel)
		d := time.Since(start)
		for part := 0; part < parts; part++ {
			if ctxErr(ctx) != nil {
				break
			}
			phase2(0, part)
		}
		return d
	}
	return p.e.steadyLocked(p.nw).RunTwoPhaseCtx(ctx, rows, kernel, parts, phase2)
}

// sumVariants folds every worker's kernel-variant counters into the
// Explain record and clears them for the next run. Runs call it after
// their scan phases; merge-side counts bumped on the caller's goroutine
// land in states[0].ctr before the call, so one fold covers everything.
func (p *planCore) sumVariants() {
	p.ex.Variants.Reset()
	for i := range p.states {
		p.ex.Variants.Add(p.states[i].ctr)
		p.states[i].ctr.Reset()
	}
}

// snapshot copies the Explain for return and zeroes the one-execution
// counters so replays report a settled steady state.
func (p *planCore) snapshot() Explain {
	ex := p.ex
	p.ex.FreshAllocs = 0
	return ex
}

// canceled settles a plan after a canceled run and passes the context
// error through: the one-execution counters are consumed exactly as
// snapshot does, so the next (successful) run reports the steady state —
// a cold compile whose first execution was canceled does not re-bill its
// fresh allocations.
func (p *planCore) canceled(err error) error {
	p.ex.FreshAllocs = 0
	return err
}

// finishOneShot adjusts a plan's Explain for the one-shot entry points:
// a replayed plan implies both caches hit; a fresh compile is, by
// definition, not a plan-cache hit.
func finishOneShot(ex *Explain, replayed bool) {
	if replayed {
		ex.StatsCached = true
	} else {
		ex.PlanCached = false
	}
}

// GroupResult is a reusable grouped-aggregation answer: the groups as
// interleaved (key, sum) pairs with keys ascending. The backing array is
// owned by the compiled plan and overwritten by its next run. The
// interleaved layout is deliberate: it is the row layout the query layer
// serves, so a cached statement's result rows alias this array directly —
// no unzip into parallel arrays, no re-interleave on materialization.
type GroupResult struct {
	// Flat holds group i's key at Flat[2i] and its sum at Flat[2i+1].
	Flat []int64
}

// Len returns the number of groups.
func (g *GroupResult) Len() int { return len(g.Flat) / 2 }

// Key returns group i's key.
func (g *GroupResult) Key(i int) int64 { return g.Flat[2*i] }

// Sum returns group i's aggregate.
func (g *GroupResult) Sum(i int) int64 { return g.Flat[2*i+1] }

// Map copies the result into a freshly allocated map (the one-shot API's
// shape).
func (g *GroupResult) Map() map[int64]int64 {
	out := make(map[int64]int64, g.Len())
	for i := 0; i < len(g.Flat); i += 2 {
		out[g.Flat[i]] = g.Flat[i+1]
	}
	return out
}

// groupEmit collects a group-shape plan's merge output as interleaved
// (key, sum) pairs and materializes it sorted. Both buffers persist
// across runs.
type groupEmit struct {
	out     GroupResult
	pairs   []int64 // interleaved (key, sum) pairs awaiting the final sort
	scratch []int64 // radix-sort ping-pong buffer

	// Rank-placement buffers (see rankSort); sized by occupied key span,
	// not result size, and persistent like the others.
	rankBits []uint64
	rankBase []int32
}

func (g *groupEmit) reset() { g.pairs = g.pairs[:0] }

func (g *groupEmit) add(k, v int64) { g.pairs = append(g.pairs, k, v) }

// finish sorts the collected pairs by key; the result aliases the pair
// buffer — the sorted interleaved pairs ARE the answer.
func (g *groupEmit) finish() {
	g.sortPairs()
	g.out.Flat = g.pairs
}

// finishCombine is finish for inputs holding per-worker partials: after
// the sort, runs of equal keys (the same group aggregated by different
// workers) are summed in place by one sequential compaction pass. This
// replaces hash-table merging for the direct multi-worker path: a merge
// probes the destination table once per source group — random DRAM
// traffic that serializes — while the sort streams every pass, so
// combining duplicates costs almost nothing over the sort the emission
// already pays for.
func (g *groupEmit) finishCombine() {
	g.sortPairs()
	w := 0
	for i := 0; i < len(g.pairs); i += 2 {
		if w > 0 && g.pairs[w-2] == g.pairs[i] {
			g.pairs[w-1] += g.pairs[i+1]
		} else {
			g.pairs[w] = g.pairs[i]
			g.pairs[w+1] = g.pairs[i+1]
			w += 2
		}
	}
	g.out.Flat = g.pairs[:w]
}

// finishFrom is finish for results already collected into per-partition
// buffers (the radix paths' phase-2 emission). Concatenating those
// buffers into one array first would stream the whole result through
// memory once more — at 1M groups a 16 MB write plus the sort's 16 MB
// re-read — so instead the radix sort's first scatter pass reads the
// partition buffers in place, and the gather into the pair buffer IS the
// first sorting pass. Radix partitions own their keys exclusively, so no
// duplicate-combining is needed.
func (g *groupEmit) finishFrom(srcs [][]int64) {
	total := 0
	for _, s := range srcs {
		total += len(s)
	}
	n := total / 2
	if cap(g.pairs) < total {
		// Same slack rationale as the scratch buffer in sortPairs.
		g.pairs = make([]int64, 0, total+total/8)
	}
	if n < 512 {
		g.pairs = g.pairs[:0]
		for _, s := range srcs {
			g.pairs = append(g.pairs, s...)
		}
		g.finish()
		return
	}
	g.pairs = g.pairs[:total]
	lo, hi := int64(0), int64(0)
	first := true
	for _, s := range srcs {
		for i := 0; i < len(s); i += 2 {
			k := s[i]
			if first {
				lo, hi = k, k
				first = false
			} else if k < lo {
				lo = k
			} else if k > hi {
				hi = k
			}
		}
	}
	span := uint64(hi) - uint64(lo)
	// Dense-enough key ranges take the rank-placement path: one pass
	// instead of one per live digit. The 8n bound keeps the bitmap at
	// most one byte per pair — cache-resident next to 16 bytes of pair
	// data per pair.
	if span <= 8*uint64(n) {
		if g.rankSort(srcs, lo, int(span>>6)+1, n, total) {
			return
		}
	}
	passes := 0
	for s := span; s > 0; s >>= radixBits {
		passes++
	}
	if cap(g.scratch) < total {
		g.scratch = make([]int64, total+total/8)
	}
	// One read of the partition buffers builds every live pass's histogram.
	var hist [radixPasses][radixBuckets]int32
	for _, s := range srcs {
		for i := 0; i < len(s); i += 2 {
			u := uint64(s[i]) - uint64(lo)
			for p := 0; p < passes; p++ {
				hist[p][(u>>(uint(p)*radixBits))&(radixBuckets-1)]++
			}
		}
	}
	live := 0
	var isLive [radixPasses]bool
	for pass := 0; pass < passes; pass++ {
		h := &hist[pass]
		isLive[pass] = true
		for _, c := range h {
			if int(c) == n {
				isLive[pass] = false
				break
			}
		}
		if isLive[pass] {
			live++
		}
	}
	if live == 0 {
		// Nothing to sort (all keys share every digit): plain concatenation.
		g.pairs = g.pairs[:0]
		for _, s := range srcs {
			g.pairs = append(g.pairs, s...)
		}
		g.out.Flat = g.pairs
		return
	}
	// The first live pass gathers from the partition buffers; the rest
	// ping-pong between pairs and scratch. Choose the first target so the
	// final pass always lands in pairs — the buffer identity the query
	// cache's steady-state alias check keys on.
	a, b := g.pairs[:total], g.scratch[:total]
	dst := a
	if live%2 == 0 {
		dst = b
	}
	firstPass := 0
	for !isLive[firstPass] {
		firstPass++
	}
	h := &hist[firstPass]
	sum := int32(0)
	for i := range h {
		h[i], sum = sum, sum+h[i]
	}
	shift := uint(firstPass) * radixBits
	for _, s := range srcs {
		for i := 0; i < len(s); i += 2 {
			bk := ((uint64(s[i]) - uint64(lo)) >> shift) & (radixBuckets - 1)
			o := int(h[bk]) * 2
			dst[o] = s[i]
			dst[o+1] = s[i+1]
			h[bk]++
		}
	}
	src := dst
	if &src[0] == &a[0] {
		dst = b
	} else {
		dst = a
	}
	for pass := firstPass + 1; pass < passes; pass++ {
		if !isLive[pass] {
			continue
		}
		h := &hist[pass]
		sum := int32(0)
		for i := range h {
			h[i], sum = sum, sum+h[i]
		}
		shift := uint(pass) * radixBits
		for i := 0; i < len(src); i += 2 {
			bk := ((uint64(src[i]) - uint64(lo)) >> shift) & (radixBuckets - 1)
			o := int(h[bk]) * 2
			dst[o] = src[i]
			dst[o+1] = src[i+1]
			h[bk]++
		}
		src, dst = dst, src
	}
	if &src[0] != &g.pairs[0] {
		g.pairs, g.scratch = src, g.pairs[:cap(g.pairs)]
		g.pairs = g.pairs[:total]
	}
	g.out.Flat = g.pairs
}

// rankSort places each (key, sum) pair directly at its key's final rank,
// read from a bitmap of present keys: an exclusive prefix sum of per-word
// popcounts gives the rank of each word's first key, and a masked popcount
// inside the word finishes the lookup. Phase-2 emissions hold globally
// unique keys — radix partitions are key-disjoint and a partition table
// emits each group once — so ranks are a bijection and one placement pass
// replaces every radix scatter: at 1M groups the radix route streams the
// 16 MB pair set five times (histogram plus two read+write passes) while
// this route reads it twice and writes it once, with the bitmap and rank
// bases staying cache-resident beside it. Returns false, leaving pairs
// untouched, if a duplicate key disproves the uniqueness precondition
// (the caller falls through to the general sort).
func (g *groupEmit) rankSort(srcs [][]int64, lo int64, words, n, total int) bool {
	if cap(g.rankBits) < words {
		g.rankBits = make([]uint64, words+words/8)
		g.rankBase = make([]int32, cap(g.rankBits))
	}
	bm := g.rankBits[:words]
	base := g.rankBase[:words]
	clear(bm)
	for _, s := range srcs {
		for i := 0; i < len(s); i += 2 {
			u := uint64(s[i]) - uint64(lo)
			bm[u>>6] |= uint64(1) << (u & 63)
		}
	}
	sum := int32(0)
	for i, w := range bm {
		base[i] = sum
		sum += int32(bits.OnesCount64(w))
	}
	if int(sum) != n {
		return false // duplicate keys: not a disjoint-partition emission
	}
	dst := g.pairs[:total]
	for _, s := range srcs {
		for i := 0; i < len(s); i += 2 {
			u := uint64(s[i]) - uint64(lo)
			w := u >> 6
			r := int(base[w]) + bits.OnesCount64(bm[w]&(uint64(1)<<(u&63)-1))
			dst[2*r] = s[i]
			dst[2*r+1] = s[i+1]
		}
	}
	g.out.Flat = dst
	return true
}

// Radix-sort geometry: 11-bit digits, so a pass streams through 2048
// counters (8 KB, L1-resident) and a 20-bit group-key space sorts in two
// passes where bytewise digits would take three.
const (
	radixBits    = 11
	radixBuckets = 1 << radixBits
	radixPasses  = (64 + radixBits - 1) / radixBits
)

// sortPairs orders g.pairs (interleaved (key, sum) pairs) by key
// ascending. Large results use an LSD radix sort: at 1M groups a
// comparison sort spends half the query's wall time on cache-missing
// partition exchanges, while the radix passes stream sequentially. Keys
// are biased by the minimum so the digit width adapts to the occupied
// key range, not the type width — a 0..1M key space needs two passes, a
// 0..1000 space one — and the bias makes negative keys order correctly
// as unsigned distances. The scratch buffer persists in the husk, so
// steady-state runs stay allocation-free.
func (g *groupEmit) sortPairs() {
	n := len(g.pairs) / 2
	if n < 512 {
		// Below the radix crossover the histogram passes cost more than
		// the comparison sort they replace. Insertion over the flat pair
		// layout: in place, allocation-free, and n is small.
		for i := 2; i < len(g.pairs); i += 2 {
			k, v := g.pairs[i], g.pairs[i+1]
			j := i
			for j > 0 && g.pairs[j-2] > k {
				g.pairs[j], g.pairs[j+1] = g.pairs[j-2], g.pairs[j-1]
				j -= 2
			}
			g.pairs[j], g.pairs[j+1] = k, v
		}
		return
	}
	lo, hi := g.pairs[0], g.pairs[0]
	for i := 0; i < len(g.pairs); i += 2 {
		if k := g.pairs[i]; k < lo {
			lo = k
		} else if k > hi {
			hi = k
		}
	}
	// uint64 subtraction gives the true distance even when hi-lo
	// overflows int64.
	span := uint64(hi) - uint64(lo)
	passes := 0
	for s := span; s > 0; s >>= radixBits {
		passes++
	}
	if passes == 0 {
		return // every key equal
	}
	if cap(g.scratch) < len(g.pairs) {
		// Slack over the exact size: the pair count of a multi-worker run
		// varies with morsel claiming, and an exact-fit buffer would be
		// reallocated on every new high-water mark.
		g.scratch = make([]int64, len(g.pairs)+len(g.pairs)/8)
	}
	src, dst := g.pairs, g.scratch[:len(g.pairs)]
	// One read of the data builds the histograms of every live pass.
	var hist [radixPasses][radixBuckets]int32
	for i := 0; i < len(src); i += 2 {
		u := uint64(src[i]) - uint64(lo)
		for p := 0; p < passes; p++ {
			hist[p][(u>>(uint(p)*radixBits))&(radixBuckets-1)]++
		}
	}
	for pass := 0; pass < passes; pass++ {
		h := &hist[pass]
		// A digit position where every key shares one value needs no pass.
		trivial := false
		for _, c := range h {
			if int(c) == n {
				trivial = true
				break
			}
		}
		if trivial {
			continue
		}
		sum := int32(0)
		for i := range h {
			h[i], sum = sum, sum+h[i]
		}
		shift := uint(pass) * radixBits
		for i := 0; i < len(src); i += 2 {
			b := ((uint64(src[i]) - uint64(lo)) >> shift) & (radixBuckets - 1)
			o := int(h[b]) * 2
			dst[o] = src[i]
			dst[o+1] = src[i+1]
			h[b]++
		}
		src, dst = dst, src
	}
	// An odd number of live passes leaves the sorted run in scratch; swap
	// the buffers instead of copying.
	if len(src) > 0 && &src[0] != &g.pairs[0] {
		g.pairs, g.scratch = src, g.pairs
	}
}

// ensure helpers: size a plan-owned buffer slice to exactly n entries,
// recycling what a previous binding allocated. Shrinking keeps the extra
// entries alive in the backing array, so a later wider binding recovers
// them instead of reallocating. Each returns the fresh-allocation count
// feeding Explain.FreshAllocs.

func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]T, n)
	copy(ns, s[:cap(s)])
	return ns
}

func ensureStates(states []workerState, n int) ([]workerState, int) {
	states = growSlice(states, n)
	fresh := 0
	for i := range states {
		if states[i].ev == nil {
			states[i] = newWorkerState()
			fresh++
		}
	}
	return states, fresh
}

func ensureTables(tabs []*ht.AggTable, n, hint int) ([]*ht.AggTable, int) {
	tabs = growSlice(tabs, n)
	fresh := 0
	for i := range tabs {
		if tabs[i] == nil {
			tabs[i] = ht.NewAggTable(1, hint)
			fresh++
		} else {
			tabs[i].Reset()
			tabs[i].Reserve(hint)
		}
	}
	return tabs, fresh
}

func ensureTable(tab *ht.AggTable, hint int) (*ht.AggTable, int) {
	if tab == nil {
		return ht.NewAggTable(1, hint), 1
	}
	tab.Reset()
	tab.Reserve(hint)
	return tab, 0
}

func ensureBitmaps(bms []*bitmap.Bitmap, n, rows int) ([]*bitmap.Bitmap, int) {
	bms = growSlice(bms, n)
	fresh := 0
	for i := range bms {
		if bms[i] == nil {
			bms[i] = bitmap.New(rows)
			fresh++
		} else {
			bms[i].Reset(rows)
		}
	}
	return bms, fresh
}

func ensurePartitioners(ps []*ht.Partitioner, n, parts int, pool *ht.ScatterPool) ([]*ht.Partitioner, int) {
	ps = growSlice(ps, n)
	fresh := 0
	for i := range ps {
		if ps[i] == nil || ps[i].Parts() != parts || ps[i].Pool() != pool {
			ps[i] = ht.NewPartitionerOn(pool, parts)
			fresh++
		} else {
			ps[i].Reset()
		}
	}
	return ps, fresh
}

// ensurePartials reuses a partials block when it already covers n workers
// (summing a wider block's zero tail is free); have tracks the allocated
// width.
func ensurePartials(cur *exec.Partials, have, n int) (*exec.Partials, int, int) {
	if cur == nil || have < n {
		return exec.NewPartials(n), n, 1
	}
	return cur, have, 0
}

// ensureEmit sizes the per-partition emission buffers, each holding a
// partition's final groups as interleaved (key, sum) pairs.
func ensureEmit(emit [][]int64, n int) [][]int64 {
	return growSlice(emit, n)
}

// Close releases the engine's persistent worker gang. Pools and caches
// are garbage-collected with the engine; Close only matters for goroutine
// hygiene when engines are created in bulk (tests, short-lived tools).
func (e *Engine) Close() {
	e.execMu.Lock()
	if e.gang != nil {
		e.gang.Close()
		e.gang = nil
	}
	e.execMu.Unlock()
}
