package ht

import (
	"math/rand"
	"testing"
)

func TestNextLiveWalksForEachOrder(t *testing.T) {
	tab := NewAggTable(1, 64)
	for k := int64(0); k < 40; k++ {
		tab.Add(tab.Lookup(k*7), 0, k)
	}
	var want []int64
	tab.ForEach(false, func(key int64, slot int) { want = append(want, key) })
	var got []int64
	for s := tab.NextLive(0, false); s >= 0; s = tab.NextLive(s+1, false) {
		got = append(got, tab.Key(s))
	}
	if len(got) != len(want) {
		t.Fatalf("NextLive visited %d groups, ForEach %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot order diverges at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestMergeFromMatchesLookupAddMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, nsrc := range []int{0, 1, 5, 100, 5000} {
		src := NewAggTable(1, nsrc)
		ref := NewAggTable(1, 64)
		dst := NewAggTable(1, 64)
		// Seed both destinations with overlapping groups.
		for k := int64(0); k < 50; k++ {
			ref.Add(ref.Lookup(k), 0, k)
			dst.Add(dst.Lookup(k), 0, k)
		}
		for i := 0; i < nsrc; i++ {
			k := int64(rng.Intn(nsrc + 10))
			src.Add(src.Lookup(k), 0, int64(rng.Intn(1000)-500))
		}
		// Reference merge: the plain Lookup+Add loop the plans used to run.
		src.ForEach(false, func(key int64, s int) {
			ref.Add(ref.Lookup(key), 0, src.Acc(s, 0))
		})
		merged := dst.MergeFrom(src)
		if int(merged) != src.Len() {
			t.Fatalf("nsrc=%d: merged %d groups, src has %d", nsrc, merged, src.Len())
		}
		if dst.Len() != ref.Len() {
			t.Fatalf("nsrc=%d: dst has %d groups, ref %d", nsrc, dst.Len(), ref.Len())
		}
		ref.ForEach(false, func(key int64, s int) {
			j := dst.Find(key)
			if j < 0 {
				t.Fatalf("nsrc=%d: key %d missing after MergeFrom", nsrc, key)
			}
			if dst.Acc(j, 0) != ref.Acc(s, 0) {
				t.Fatalf("nsrc=%d key %d: acc %d, want %d", nsrc, key, dst.Acc(j, 0), ref.Acc(s, 0))
			}
			if dst.Count(j) != ref.Count(s) {
				t.Fatalf("nsrc=%d key %d: count %d, want %d", nsrc, key, dst.Count(j), ref.Count(s))
			}
		})
	}
}

func TestMergeFromSkipsInvalidGroups(t *testing.T) {
	// Value masking can create groups whose validity flag never set; the
	// merge must skip them exactly as ForEach(false) does.
	src := NewAggTable(1, 16)
	src.AddMasked(src.Lookup(1), 0, 10, 1)
	src.AddMasked(src.Lookup(2), 0, 99, 0) // masked-out: invalid group
	dst := NewAggTable(1, 16)
	if merged := dst.MergeFrom(src); merged != 1 {
		t.Fatalf("merged %d groups, want 1", merged)
	}
	if dst.Find(2) >= 0 {
		t.Error("invalid group leaked through MergeFrom")
	}
}

func TestTouchReturnsWithoutMutating(t *testing.T) {
	tab := NewAggTable(1, 16)
	tab.Add(tab.Lookup(7), 0, 3)
	probes := tab.Probes
	var sink uint64
	sink += tab.Touch(7)
	sink += tab.Touch(NullKey)
	if tab.Probes != probes {
		t.Error("Touch must not count probes")
	}
	if tab.Len() != 1 || tab.Acc(tab.Find(7), 0) != 3 {
		t.Errorf("Touch mutated the table (sink=%d)", sink)
	}

	jt := NewJoinTable(16)
	jt.Insert(5, 1)
	_ = jt.Touch(5)
	if r, ok := jt.Probe(5); !ok || r != 1 {
		t.Error("JoinTable.Touch mutated the table")
	}

	pt := NewPartitionedJoinTable(4, 16)
	pt.Insert(5, 2)
	_ = pt.Touch(5)
	if r, ok := pt.Probe(5); !ok || r != 2 {
		t.Error("PartitionedJoinTable.Touch mutated the table")
	}
}

func TestTouchAppendMatchesAppendTarget(t *testing.T) {
	p := NewPartitioner(4)
	var sink uint64
	// Empty partition: tail chunk unclaimed, touch is a no-op.
	sink += p.TouchAppend(42)
	p.Append(42, 1)
	// Now the tail chunk exists; the touch target is the next write slot.
	sink += p.TouchAppend(42)
	p.Append(42, 2)
	if p.Rows() != 2 {
		t.Fatalf("rows=%d after appends (sink=%d)", p.Rows(), sink)
	}
	part := PartitionOf(42, p.Shift())
	c := p.Head(part)
	keys, vals := p.Chunk(part, c)
	if len(keys) != 2 || keys[0] != 42 || vals[1] != 2 {
		t.Fatalf("chunk contents %v %v", keys, vals)
	}
}
