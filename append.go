package swole

import (
	"fmt"
	"sync"

	"github.com/reprolab/swole/internal/ingest"
	"github.com/reprolab/swole/internal/storage"
)

// Streaming append path (DESIGN.md §14). Appends keep the store's
// append-only-at-table-granularity discipline: a batch builds replacement
// columns with storage.Column.Append (sharing backing arrays whenever the
// physical width holds), registers the replacement table, and lets the
// existing invalidation machinery do exactly — and only — the work the
// change requires: the table's version and shard epoch advance, its
// cached plans are evicted, and its cached statistics are merged
// incrementally with the delta instead of being dropped. Other tables'
// plans and statistics are untouched.
//
// Sharded tables route appends to the last row-range shard (swapped under
// that one shard's write lock, so readers of every other shard never
// block) until it reaches twice the nominal shard size fixed at
// ShardTable time, then grow a fresh shard covering exactly the delta.
//
// Lock order: ingestMu → shardMu → d.mu; engine mutexes are leaves.

// IngestPolicy controls what a malformed CSV row does to a batch.
type IngestPolicy = ingest.Policy

// Ingest error policies.
const (
	// IngestStrict aborts the whole batch on the first malformed row;
	// nothing is appended.
	IngestStrict = ingest.Strict
	// IngestSkip drops malformed rows, counting and attributing each,
	// and appends the rest.
	IngestSkip = ingest.Skip
)

// IngestReport summarizes one CSV batch: rows appended, rows rejected,
// and up to ingest.MaxRowErrors line-attributed error messages.
type IngestReport struct {
	Accepted int      `json:"accepted"`
	Rejected int      `json:"rejected"`
	Errors   []string `json:"errors,omitempty"`
}

// AppendCSV parses data as CSV through the table's compiled ingestion
// kernel and appends the accepted rows. Fields line up positionally with
// the table's columns and decode per column logical type: integers,
// fixed-point decimals ("12.34"), dates ("2024-01-31"), and
// dictionary-encoded strings (the value must already be in the column's
// dictionary — appends never grow dictionaries, which is what keeps
// shard replicas and cached predicates valid).
//
// Under IngestStrict a malformed row fails the whole batch: the report
// carries the offending line and nothing is appended. Under IngestSkip
// malformed rows are dropped and attributed in the report while the rest
// append. The kernel is compiled once per table and reused across
// batches, so the warm parse path performs zero heap allocations.
func (d *DB) AppendCSV(table string, data []byte, policy IngestPolicy) (IngestReport, error) {
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
	k, err := d.kernelLocked(table)
	if err != nil {
		return IngestReport{}, err
	}
	k.SetPolicy(policy)
	k.Reset()
	perr := k.Parse(data)
	rep := IngestReport{Accepted: k.Accepted(), Rejected: k.Rejected()}
	for _, re := range k.Errors() {
		rep.Errors = append(rep.Errors, re.Error())
	}
	if perr != nil {
		rep.Accepted = 0 // strict failure: the whole batch is refused
		return rep, perr
	}
	if k.Accepted() == 0 {
		return rep, nil
	}
	if err := d.appendColumns(table, k.Columns()); err != nil {
		rep.Accepted = 0
		return rep, err
	}
	return rep, nil
}

// AppendRows appends row-major raw values: dictionary codes, day numbers,
// and fixed-point values exactly as Result.Rows exposes them. Every row
// must have one value per column; dictionary-encoded columns reject codes
// outside the dictionary.
func (d *DB) AppendRows(table string, rows [][]int64) error {
	if len(rows) == 0 {
		return nil
	}
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
	t := d.db.Table(table)
	if t == nil {
		return fmt.Errorf("swole: AppendRows: no table %s", table)
	}
	cols := make([][]int64, len(t.Columns))
	for i := range cols {
		cols[i] = make([]int64, len(rows))
	}
	for r, row := range rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("swole: AppendRows: row %d has %d values, table %s has %d columns", r, len(row), table, len(t.Columns))
		}
		for c, v := range row {
			cols[c][r] = v
		}
	}
	for i, c := range t.Columns {
		if c.Dict == nil {
			continue
		}
		for r, v := range cols[i] {
			if v < 0 || v >= int64(c.Dict.Len()) {
				return fmt.Errorf("swole: AppendRows: row %d: %d is not a dictionary code of column %s", r, v, c.Name)
			}
		}
	}
	return d.appendColumns(table, cols)
}

// kernelLocked returns the table's compiled CSV kernel, rebuilding it when
// the table's schema has drifted from the one the kernel was compiled for
// (a CreateTable under the same name). Callers hold ingestMu.
func (d *DB) kernelLocked(table string) (*ingest.Kernel, error) {
	t := d.db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("swole: AppendCSV: no table %s", table)
	}
	if k := d.kernels[table]; k != nil && kernelMatches(k.Schema(), t) {
		return k, nil
	}
	k, err := ingest.NewKernel(ingest.SchemaFor(t), ingest.Strict)
	if err != nil {
		return nil, err
	}
	d.kernels[table] = k
	return k, nil
}

// kernelMatches reports whether a compiled kernel's schema still describes
// the table: same column names, kinds, and dictionary identities.
func kernelMatches(s ingest.Schema, t *storage.Table) bool {
	if len(s) != len(t.Columns) {
		return false
	}
	want := ingest.SchemaFor(t)
	for i := range s {
		if s[i] != want[i] { // Field is comparable; Dict compares by pointer
			return false
		}
	}
	return true
}

// appendColumns is the one write path under AppendCSV and AppendRows:
// build the replacement table, verify every constraint before registering
// anything, swap registrations (catalog, fleet, shard layout), then run
// the invalidation protocol. Callers hold ingestMu.
func (d *DB) appendColumns(name string, cols [][]int64) error {
	d.shardMu.Lock()
	defer d.shardMu.Unlock()
	t := d.db.Table(name)
	if t == nil {
		return fmt.Errorf("swole: append: no table %s", name)
	}
	if len(cols) != len(t.Columns) {
		return fmt.Errorf("swole: append: %d columns for table %s with %d", len(cols), name, len(t.Columns))
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return fmt.Errorf("swole: append: column %d has %d values, column 0 has %d", i, len(c), n)
		}
	}
	if n == 0 {
		return nil
	}
	oldRows := t.Rows()
	newRows := oldRows + n
	catVer := d.db.TableVersion(name)
	memberVers := make([]uint64, len(d.fleet))
	for i, fs := range d.fleet {
		memberVers[i] = fs.db.TableVersion(name)
	}

	// Build the replacement table and verify every constraint — foreign-key
	// extension, parent-key uniqueness — before registering anything, so a
	// failed append leaves no partial state.
	newCols := make([]*storage.Column, len(cols))
	for i, c := range t.Columns {
		newCols[i] = c.Append(cols[i])
	}
	newTab, err := storage.NewTable(name, newCols...)
	if err != nil {
		return err
	}
	var childIdx []*storage.FKIndex // extended indexes where name is the child
	for _, idx := range d.db.FKIndexes() {
		switch name {
		case idx.Child:
			parent := d.db.Table(idx.Parent)
			ext, err := storage.ExtendFKIndex(idx, newTab, parent)
			if err != nil {
				return err
			}
			childIdx = append(childIdx, ext)
		case idx.Parent:
			// Appending to a foreign key's parent: the new keys must keep the
			// primary key unique. Existing child positions stay valid — the
			// parent's prefix is untouched.
			if err := storage.ValidateUniqueKey(newTab.Column(idx.PK)); err != nil {
				return err
			}
		}
	}

	meta := d.shardMeta[name]
	grew := false
	switch {
	case meta == nil:
		// Unsharded: the catalog and every fleet member hold the full table.
		d.db.AddTable(newTab)
		for _, idx := range childIdx {
			d.db.PutFKIndex(idx)
		}
		for _, fs := range d.fleet {
			fs.db.AddTable(newTab)
			for _, idx := range childIdx {
				fs.db.PutFKIndex(idx)
			}
		}
	default:
		k := meta.k
		lastLo := meta.bounds[k-1]
		grew = oldRows-lastLo >= 2*meta.target
		if grew {
			// Shard-growth rule: the last shard is already at twice its
			// nominal size; the delta becomes shard k. ensureFleetLocked
			// installs the pre-append layout into any new member, which the
			// registrations below then overwrite for this table.
			if err := d.ensureFleetLocked(k + 1); err != nil {
				return err
			}
			newShard, err := newTab.Slice(oldRows, newRows)
			if err != nil {
				return err
			}
			d.fleet[k].db.AddTable(newShard)
			for _, idx := range childIdx {
				d.fleet[k].db.PutFKIndex(idx.Slice(oldRows, newRows))
			}
			meta.bounds = append(meta.bounds, newRows)
			meta.locks = append(meta.locks, &sync.RWMutex{})
			meta.k++
		} else {
			// Swap the last shard under its own write lock: readers of
			// shards 0..k-2 never block, in-flight readers of shard k-1
			// finish on the old (immutable) arrays.
			newLast, err := newTab.Slice(lastLo, newRows)
			if err != nil {
				return err
			}
			meta.locks[k-1].Lock()
			d.fleet[k-1].db.AddTable(newLast)
			for _, idx := range childIdx {
				d.fleet[k-1].db.PutFKIndex(idx.Slice(lastLo, newRows))
			}
			meta.locks[k-1].Unlock()
			meta.bounds[k] = newRows
		}
		// Members past the shard fan-out hold full replicas; the catalog
		// serves the interpreter and unsharded engine.
		for i := meta.k; i < len(d.fleet); i++ {
			d.fleet[i].db.AddTable(newTab)
			for _, idx := range childIdx {
				d.fleet[i].db.PutFKIndex(idx)
			}
		}
		d.db.AddTable(newTab)
		for _, idx := range childIdx {
			d.db.PutFKIndex(idx)
		}
	}

	// Invalidation protocol: the epoch and eviction cover cached plans
	// (their bound arrays are length-capped views of the old data); the
	// stats merge folds the delta into cached statistics instead of
	// dropping them. Only this table is touched.
	d.shardEpochs[name]++
	d.evictPlans(name)
	d.engine.MergeStatsOnAppend(name, catVer, oldRows)
	for i, fs := range d.fleet {
		switch {
		case meta == nil:
			fs.engine.MergeStatsOnAppend(name, memberVers[i], oldRows)
		case grew && i == meta.k-1:
			// This member went from full replica (or nothing) to the new
			// delta shard — its view shrank; merged stats would describe
			// the wrong rows.
			fs.engine.InvalidateStats(name)
		case !grew && i == meta.k-1:
			// The swapped last shard: its delta starts at its old length.
			fs.engine.MergeStatsOnAppend(name, memberVers[i], oldRows-meta.bounds[meta.k-1])
		case i >= meta.k:
			fs.engine.MergeStatsOnAppend(name, memberVers[i], oldRows)
		}
		// Members holding untouched shards saw no change: their
		// registration, version, and statistics all stay valid.
	}
	return nil
}
