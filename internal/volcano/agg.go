package volcano

import (
	"math"

	"github.com/reprolab/swole/internal/expr"
	"github.com/reprolab/swole/internal/plan"
	"github.com/reprolab/swole/internal/storage"
)

// accState accumulates one aggregate for one group. All aggregates
// accumulate in int64 (Section IV: "all aggregates are stored as 64-bit
// integers").
type accState struct {
	sum   int64
	count int64
	min   int64
	max   int64
}

func newAccStates(aggs []plan.AggSpec) []accState {
	states := make([]accState, len(aggs))
	for i := range states {
		states[i].min = math.MaxInt64
		states[i].max = math.MinInt64
	}
	return states
}

func updateAccStates(states []accState, aggs []plan.AggSpec, row Row) {
	for i, a := range aggs {
		var v int64
		if a.Arg != nil {
			v = expr.EvalRow(a.Arg, row)
		}
		s := &states[i]
		s.sum += v
		s.count++
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
}

// finalize produces the aggregate value. Averages are fixed-point scaled by
// storage.DecimalOne, matching the hand-specialized kernels.
func (s *accState) finalize(f plan.AggFunc) int64 {
	switch f {
	case plan.Sum:
		return s.sum
	case plan.Count:
		return s.count
	case plan.Avg:
		if s.count == 0 {
			return 0
		}
		return s.sum * storage.DecimalOne / s.count
	case plan.Min:
		if s.count == 0 {
			return 0
		}
		return s.min
	default: // Max
		if s.count == 0 {
			return 0
		}
		return s.max
	}
}

// aggIter is a blocking hash aggregation.
type aggIter struct {
	spec     *plan.Aggregate
	in       iterator
	keyIdx   []int
	fields   Fields
	groups   []Row // emitted rows
	pos      int
	inFields Fields
}

func buildAggregate(a *plan.Aggregate, db *storage.Database) (iterator, Fields, error) {
	in, inFields, err := build(a.Input, db)
	if err != nil {
		return nil, nil, err
	}
	keyIdx := make([]int, len(a.GroupBy))
	outFields := make(Fields, 0, len(a.GroupBy)+len(a.Aggs))
	for i, g := range a.GroupBy {
		idx := inFields.Index(g)
		if idx < 0 {
			return nil, nil, errNoColumn(g)
		}
		keyIdx[i] = idx
		outFields = append(outFields, inFields[idx])
	}
	for i := range a.Aggs {
		if a.Aggs[i].Arg != nil {
			if err := expr.BindRow(a.Aggs[i].Arg, inFields); err != nil {
				return nil, nil, err
			}
		}
		outFields = append(outFields, Field{Name: a.Aggs[i].As, Log: storage.LogInt})
	}
	if a.Having != nil {
		// HAVING sees the finalized output row: keys then aggregates.
		if err := expr.BindRow(a.Having, outFields); err != nil {
			return nil, nil, err
		}
	}
	return &aggIter{spec: a, in: in, keyIdx: keyIdx, fields: outFields, inFields: inFields}, outFields, nil
}

type errNoColumn string

func (e errNoColumn) Error() string { return "volcano: no column " + string(e) }

func (it *aggIter) open() error {
	if err := it.in.open(); err != nil {
		return err
	}
	defer it.in.close()
	type group struct {
		keys Row
		accs []accState
	}
	groups := map[string]*group{}
	var order []string // deterministic first-seen emission order
	buf := make([]byte, 0, 64)
	for {
		row, ok, err := it.in.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := packKey(buf, row, it.keyIdx)
		g := groups[k]
		if g == nil {
			keys := make(Row, len(it.keyIdx))
			for i, idx := range it.keyIdx {
				keys[i] = row[idx]
			}
			g = &group{keys: keys, accs: newAccStates(it.spec.Aggs)}
			groups[k] = g
			order = append(order, k)
		}
		updateAccStates(g.accs, it.spec.Aggs, row)
	}
	// A scalar aggregation over zero rows still produces one row
	// (count=0, sums=0), matching SQL semantics for our integer types.
	if len(it.keyIdx) == 0 && len(order) == 0 {
		groups[""] = &group{keys: Row{}, accs: newAccStates(it.spec.Aggs)}
		order = append(order, "")
	}
	it.groups = it.groups[:0]
	for _, k := range order {
		g := groups[k]
		out := make(Row, 0, len(g.keys)+len(g.accs))
		out = append(out, g.keys...)
		for i := range g.accs {
			out = append(out, g.accs[i].finalize(it.spec.Aggs[i].Func))
		}
		if it.spec.Having != nil && expr.EvalRow(it.spec.Having, out) == 0 {
			continue
		}
		it.groups = append(it.groups, out)
	}
	it.pos = 0
	return nil
}

func (it *aggIter) next() (Row, bool, error) {
	if it.pos >= len(it.groups) {
		return nil, false, nil
	}
	row := it.groups[it.pos]
	it.pos++
	return row, true, nil
}

func (it *aggIter) close() {}
