package vec

// This file holds the unrolled, width-specialized kernel variants. Go's
// compiler auto-vectorizes very little (the paper's Go substitution note),
// so the specialization the paper gets from generated C++ is done by hand
// here: every hot loop is instantiated per lane width by the generic
// machinery, processes 64-element sub-tiles through full slice expressions
// (so bounds checks hoist out of the inner loop), and reductions carry four
// independent accumulators to break the loop-carried dependency chain.
// Every variant tolerates zero-length input and short tails.

// SubTile is the unroll granularity of the specialized kernels. 64 lanes of
// the widest type span eight cache lines — enough work to amortize the loop
// overhead, small enough that four live accumulators cover the FMA latency.
const SubTile = 64

// WidenU copies a typed tile into int64 scratch, unrolled over sub-tiles.
// The width-specialized instantiations replace the per-element Kind switch
// the interpreter would otherwise run inside the loop.
func WidenU[T Number](vals []T, out []int64) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			o[j] = int64(v[j])
			o[j+1] = int64(v[j+1])
			o[j+2] = int64(v[j+2])
			o[j+3] = int64(v[j+3])
		}
	}
	for ; i < n; i++ {
		out[i] = int64(vals[i])
	}
}

// SumAllU adds every lane with four accumulators.
func SumAllU[T Number](vals []T) int64 {
	n := len(vals)
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			s0 += int64(v[j])
			s1 += int64(v[j+1])
			s2 += int64(v[j+2])
			s3 += int64(v[j+3])
		}
	}
	for ; i < n; i++ {
		s0 += int64(vals[i])
	}
	return s0 + s1 + s2 + s3
}

// SumMaskedU is the unrolled value-masking aggregation: vals[i]*cmp[i]
// summed into four accumulators.
func SumMaskedU[T Number](vals []T, cmp []byte) int64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	_ = cmp[n-1]
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		m := cmp[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			s0 += int64(v[j]) * int64(m[j])
			s1 += int64(v[j+1]) * int64(m[j+1])
			s2 += int64(v[j+2]) * int64(m[j+2])
			s3 += int64(v[j+3]) * int64(m[j+3])
		}
	}
	for ; i < n; i++ {
		s0 += int64(vals[i]) * int64(cmp[i])
	}
	return s0 + s1 + s2 + s3
}

// SumProdMaskedU is the unrolled masked product aggregation:
// (a[i]*b[i])*cmp[i] summed into four accumulators.
func SumProdMaskedU[T Number](a, b []T, cmp []byte) int64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	_ = b[n-1]
	_ = cmp[n-1]
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		av := a[i : i+SubTile : i+SubTile]
		bv := b[i : i+SubTile : i+SubTile]
		m := cmp[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			s0 += int64(av[j]) * int64(bv[j]) * int64(m[j])
			s1 += int64(av[j+1]) * int64(bv[j+1]) * int64(m[j+1])
			s2 += int64(av[j+2]) * int64(bv[j+2]) * int64(m[j+2])
			s3 += int64(av[j+3]) * int64(bv[j+3]) * int64(m[j+3])
		}
	}
	for ; i < n; i++ {
		s0 += int64(a[i]) * int64(b[i]) * int64(cmp[i])
	}
	return s0 + s1 + s2 + s3
}

// SumSelU adds vals[sel[j]] over a selection vector with four accumulators;
// the gathers are independent, so the loads overlap.
func SumSelU[T Number](vals []T, sel []int32, n int) int64 {
	if n == 0 {
		return 0
	}
	_ = sel[n-1]
	var s0, s1, s2, s3 int64
	j := 0
	for ; j+4 <= n; j += 4 {
		s0 += int64(vals[sel[j]])
		s1 += int64(vals[sel[j+1]])
		s2 += int64(vals[sel[j+2]])
		s3 += int64(vals[sel[j+3]])
	}
	for ; j < n; j++ {
		s0 += int64(vals[sel[j]])
	}
	return s0 + s1 + s2 + s3
}

// MaskKeysU materializes masked group-by keys (key masking, Section III-B)
// unrolled over sub-tiles. Failed lanes get nullKey via a conditional move;
// the inner loop has no branches.
func MaskKeysU[T Number](keys []T, cmp []byte, nullKey int64, out []int64) {
	n := len(keys)
	if n == 0 {
		return
	}
	_ = cmp[n-1]
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		kv := keys[i : i+SubTile : i+SubTile]
		m := cmp[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j++ {
			k := int64(kv[j])
			if m[j] == 0 {
				k = nullKey
			}
			o[j] = k
		}
	}
	for ; i < n; i++ {
		k := int64(keys[i])
		if cmp[i] == 0 {
			k = nullKey
		}
		out[i] = k
	}
}

// CmpConstU evaluates vals[i] op c into out at the tile's native width,
// dispatching once per tile to an unrolled branch-free loop.
func CmpConstU[T Number](op CmpOp, vals []T, c T, out []byte) {
	switch op {
	case LT:
		CmpConstLTU(vals, c, out)
	case LE:
		CmpConstLEU(vals, c, out)
	case GT:
		CmpConstGTU(vals, c, out)
	case GE:
		CmpConstGEU(vals, c, out)
	case EQ:
		CmpConstEQU(vals, c, out)
	case NE:
		CmpConstNEU(vals, c, out)
	}
}

// CmpConstLTU writes out[i] = (vals[i] < c), unrolled.
func CmpConstLTU[T Number](vals []T, c T, out []byte) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			o[j] = b2i(v[j] < c)
			o[j+1] = b2i(v[j+1] < c)
			o[j+2] = b2i(v[j+2] < c)
			o[j+3] = b2i(v[j+3] < c)
		}
	}
	for ; i < n; i++ {
		out[i] = b2i(vals[i] < c)
	}
}

// CmpConstLEU writes out[i] = (vals[i] <= c), unrolled.
func CmpConstLEU[T Number](vals []T, c T, out []byte) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			o[j] = b2i(v[j] <= c)
			o[j+1] = b2i(v[j+1] <= c)
			o[j+2] = b2i(v[j+2] <= c)
			o[j+3] = b2i(v[j+3] <= c)
		}
	}
	for ; i < n; i++ {
		out[i] = b2i(vals[i] <= c)
	}
}

// CmpConstGTU writes out[i] = (vals[i] > c), unrolled.
func CmpConstGTU[T Number](vals []T, c T, out []byte) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			o[j] = b2i(v[j] > c)
			o[j+1] = b2i(v[j+1] > c)
			o[j+2] = b2i(v[j+2] > c)
			o[j+3] = b2i(v[j+3] > c)
		}
	}
	for ; i < n; i++ {
		out[i] = b2i(vals[i] > c)
	}
}

// CmpConstGEU writes out[i] = (vals[i] >= c), unrolled.
func CmpConstGEU[T Number](vals []T, c T, out []byte) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			o[j] = b2i(v[j] >= c)
			o[j+1] = b2i(v[j+1] >= c)
			o[j+2] = b2i(v[j+2] >= c)
			o[j+3] = b2i(v[j+3] >= c)
		}
	}
	for ; i < n; i++ {
		out[i] = b2i(vals[i] >= c)
	}
}

// CmpConstEQU writes out[i] = (vals[i] == c), unrolled.
func CmpConstEQU[T Number](vals []T, c T, out []byte) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			o[j] = b2i(v[j] == c)
			o[j+1] = b2i(v[j+1] == c)
			o[j+2] = b2i(v[j+2] == c)
			o[j+3] = b2i(v[j+3] == c)
		}
	}
	for ; i < n; i++ {
		out[i] = b2i(vals[i] == c)
	}
}

// CmpConstNEU writes out[i] = (vals[i] != c), unrolled.
func CmpConstNEU[T Number](vals []T, c T, out []byte) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 4 {
			o[j] = b2i(v[j] != c)
			o[j+1] = b2i(v[j+1] != c)
			o[j+2] = b2i(v[j+2] != c)
			o[j+3] = b2i(v[j+3] != c)
		}
	}
	for ; i < n; i++ {
		out[i] = b2i(vals[i] != c)
	}
}

// CmpConstBetweenU writes out[i] = (lo <= vals[i] <= hi), unrolled.
func CmpConstBetweenU[T Number](vals []T, lo, hi T, out []byte) {
	n := len(vals)
	if n == 0 {
		return
	}
	_ = out[n-1]
	i := 0
	for ; i+SubTile <= n; i += SubTile {
		v := vals[i : i+SubTile : i+SubTile]
		o := out[i : i+SubTile : i+SubTile]
		for j := 0; j < SubTile; j += 2 {
			o[j] = b2i(v[j] >= lo) & b2i(v[j] <= hi)
			o[j+1] = b2i(v[j+1] >= lo) & b2i(v[j+1] <= hi)
		}
	}
	for ; i < n; i++ {
		out[i] = b2i(vals[i] >= lo) & b2i(vals[i] <= hi)
	}
}
