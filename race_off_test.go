//go:build !race

package swole

// raceEnabled reports whether the race detector instruments this build;
// allocation-count gates are skipped under it (see
// partition_swole_test.go and internal/core's identical guard).
const raceEnabled = false
