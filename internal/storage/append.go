package storage

import "fmt"

// Append-path primitives. The store stays append-only at the table
// granularity — a table is mutated by registering a replacement — but the
// replacement built here shares the old backing arrays whenever the new
// values fit the column's physical width. Readers hold length-bounded
// slice headers (every shard view is a full slice expression), so writing
// values past the old length never races with a reader of the old view;
// the append layer serializes writers externally.

// kindFor returns the narrowest physical width that losslessly holds
// every value in [lo, hi].
func kindFor(lo, hi int64) Kind {
	switch {
	case lo >= -128 && hi <= 127:
		return KindInt8
	case lo >= -32768 && hi <= 32767:
		return KindInt16
	case lo >= -(1<<31) && hi <= (1<<31)-1:
		return KindInt32
	default:
		return KindInt64
	}
}

// Append returns a new column holding the receiver's values followed by
// vals. The receiver is never mutated: when vals fit the current physical
// width the result shares (and possibly extends in place, beyond the
// receiver's length) the backing array; when a value needs a wider
// representation the whole column is rebuilt at the wider width, leaving
// existing views on the old, value-identical array. Name, logical type
// and dictionary carry over.
func (c *Column) Append(vals []int64) *Column {
	lo, hi := int64(0), int64(0)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	k := kindFor(lo, hi)
	if k < c.Kind {
		k = c.Kind
	}
	out := &Column{Name: c.Name, Kind: k, Log: c.Log, Dict: c.Dict}
	n := c.Len()
	switch k {
	case KindInt8:
		s := c.I8
		for _, v := range vals {
			s = append(s, int8(v))
		}
		out.I8 = s
	case KindInt16:
		s := c.I16
		if c.Kind != KindInt16 {
			s = make([]int16, n, n+len(vals))
			for i := 0; i < n; i++ {
				s[i] = int16(c.Get(i))
			}
		}
		for _, v := range vals {
			s = append(s, int16(v))
		}
		out.I16 = s
	case KindInt32:
		s := c.I32
		if c.Kind != KindInt32 {
			s = make([]int32, n, n+len(vals))
			for i := 0; i < n; i++ {
				s[i] = int32(c.Get(i))
			}
		}
		for _, v := range vals {
			s = append(s, int32(v))
		}
		out.I32 = s
	default:
		s := c.I64
		if c.Kind != KindInt64 {
			s = make([]int64, n, n+len(vals))
			for i := 0; i < n; i++ {
				s[i] = c.Get(i)
			}
		}
		out.I64 = append(s, vals...)
	}
	return out
}

// ExtendFKIndex returns idx extended to cover the child rows appended
// since the index was built: rows [len(idx.Pos), child.Rows()). The new
// positions are verified against the (possibly also grown) parent, so an
// append that would violate referential integrity is rejected before
// anything is registered. The existing prefix is shared with idx.
func ExtendFKIndex(idx *FKIndex, child, parent *Table) (*FKIndex, error) {
	fkCol := child.Column(idx.FK)
	pkCol := parent.Column(idx.PK)
	if fkCol == nil || pkCol == nil {
		return nil, fmt.Errorf("storage: extend fk index %s.%s -> %s.%s: missing column", idx.Child, idx.FK, idx.Parent, idx.PK)
	}
	if len(idx.Pos) > fkCol.Len() {
		return nil, fmt.Errorf("storage: extend fk index %s.%s: index covers %d rows but child has %d", idx.Child, idx.FK, len(idx.Pos), fkCol.Len())
	}
	pos := make(map[int64]int32, pkCol.Len())
	for i := 0; i < pkCol.Len(); i++ {
		k := pkCol.Get(i)
		if _, dup := pos[k]; dup {
			return nil, fmt.Errorf("storage: duplicate primary key %d in %s.%s", k, idx.Parent, idx.PK)
		}
		pos[k] = int32(i)
	}
	out := idx.Pos
	for i := len(idx.Pos); i < fkCol.Len(); i++ {
		p, ok := pos[fkCol.Get(i)]
		if !ok {
			return nil, fmt.Errorf("storage: referential integrity violation: appended %s.%s[%d]=%d has no match in %s.%s",
				idx.Child, idx.FK, i, fkCol.Get(i), idx.Parent, idx.PK)
		}
		out = append(out, p)
	}
	return &FKIndex{Child: idx.Child, FK: idx.FK, Parent: idx.Parent, PK: idx.PK, Pos: out}, nil
}

// ValidateUniqueKey checks that the column holds pairwise-distinct values,
// i.e. that it can serve as a primary key. The append path runs it on a
// parent table's key column after an append, before registering anything.
func ValidateUniqueKey(c *Column) error {
	seen := make(map[int64]struct{}, c.Len())
	for i := 0; i < c.Len(); i++ {
		v := c.Get(i)
		if _, dup := seen[v]; dup {
			return fmt.Errorf("storage: duplicate primary key %d in column %s", v, c.Name)
		}
		seen[v] = struct{}{}
	}
	return nil
}
