// Command swoleload drives a running swoled with closed-loop load and
// reports tail latency.
//
//	swoleload -addr localhost:8080 -qps 200 -conns 8 -duration 30s \
//	    -query 'select sum(r_a) from r where r_x < 50@3' \
//	    -query 'select r_c, sum(r_a) from r where r_x < 50 group by r_c@1' \
//	    -json BENCH_serving.json -gate-p99 250ms -gate-errors 0
//
// Each -query takes "sql@weight" (weight optional, default 1); the mix is
// interleaved deterministically across connections. The run prints a
// human summary, optionally writes the full report as JSON, and exits
// nonzero when a gate fails — CI wires -gate-p99 and -gate-errors
// directly into the job result.
//
// -ingest-weight N makes N percent of the requests CSV batches POSTed to
// /ingest (a mixed read/write workload):
//
//	swoleload -ingest-weight 10 -ingest-rows 64 -duration 30s \
//	    -gate-p99 250ms -gate-errors 0
//
// Batches come from -ingest-file, or — against the default swoled
// microbenchmark — from a generated batch of -ingest-rows valid rows for
// the fact table r. Ingest latencies and outcomes are reported (and
// gated) separately from reads: -gate-p99 bounds read latency alone,
// -gate-errors spans both sides.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/reprolab/swole/internal/load"
)

// queryFlags collects repeated -query flags, each "sql@weight".
type queryFlags []load.Query

func (q *queryFlags) String() string { return fmt.Sprintf("%d queries", len(*q)) }

func (q *queryFlags) Set(s string) error {
	sql, weight := s, 1
	// The weight suffix is the part after the LAST @ — SQL text contains
	// no @, but guard against one anyway by requiring an integer suffix.
	if at := strings.LastIndex(s, "@"); at > 0 {
		if w, err := strconv.Atoi(s[at+1:]); err == nil {
			if w <= 0 {
				return fmt.Errorf("weight must be positive in %q", s)
			}
			sql, weight = s[:at], w
		}
	}
	if strings.TrimSpace(sql) == "" {
		return fmt.Errorf("empty query")
	}
	*q = append(*q, load.Query{SQL: sql, Weight: weight})
	return nil
}

// defaultMix exercises the serving path's main shapes against the swoled
// microbenchmark dataset: a masked scalar aggregate and a grouped one.
var defaultMix = []load.Query{
	{SQL: "select sum(r_a) from r where r_x < 50", Weight: 3},
	{SQL: "select r_c, sum(r_a) from r where r_x < 50 group by r_c", Weight: 1},
}

// microBatch generates n valid CSV rows for the swoled microbenchmark
// fact table r (r_a, r_b, r_x, r_y, r_c, r_fk). Values stay inside the
// loaded columns' physical widths and r_fk inside the dimension's first
// 100 keys, so batches append under strict policy against any -dim ≥ 100.
func microBatch(n int) []byte {
	if n <= 0 {
		n = 64
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,1,%d,1,%d,%d\n", i%9, i%100, i%8, i%100)
	}
	return []byte(b.String())
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "swoled address (host:port or URL)")
		qps      = flag.Float64("qps", 100, "aggregate target rate; 0 = unpaced")
		conns    = flag.Int("conns", 4, "closed-loop connections")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
		jsonPath = flag.String("json", "", "write the full report to this file")

		gateP99    = flag.Duration("gate-p99", 0, "fail when the read p99 exceeds this (0 = off)")
		gateErrors = flag.Float64("gate-errors", -1, "fail when the error rate across reads and ingests exceeds this fraction (negative = off)")

		ingestWeight = flag.Int("ingest-weight", 0, "percent of requests that are CSV batches POSTed to /ingest (0 = read-only)")
		ingestTable  = flag.String("ingest-table", "r", "table the batches append to")
		ingestFile   = flag.String("ingest-file", "", "CSV batch to POST (default: generate -ingest-rows micro fact-table rows)")
		ingestRows   = flag.Int("ingest-rows", 64, "rows per generated batch when -ingest-file is unset")
		ingestPolicy = flag.String("ingest-policy", "strict", "malformed-row policy: strict or skip")
	)
	var mix queryFlags
	flag.Var(&mix, "query", "workload entry \"sql@weight\" (repeatable; default: built-in micro mix)")
	flag.Parse()
	if len(mix) == 0 {
		mix = defaultMix
	}

	var ingest *load.IngestConfig
	if *ingestWeight > 0 {
		body := microBatch(*ingestRows)
		if *ingestFile != "" {
			b, err := os.ReadFile(*ingestFile)
			if err != nil {
				log.Fatalf("swoleload: %v", err)
			}
			body = b
		}
		ingest = &load.IngestConfig{
			Percent: *ingestWeight,
			Table:   *ingestTable,
			Body:    body,
			Policy:  *ingestPolicy,
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("swoleload: %d conns, target %.0f qps, %v against %s", *conns, *qps, *duration, *addr)
	if ingest != nil {
		log.Printf("swoleload: %d%% of requests are %d-byte ingest batches to table %s", ingest.Percent, len(ingest.Body), ingest.Table)
	}
	rep, err := load.Run(ctx, load.Config{
		Addr:     *addr,
		QPS:      *qps,
		Conns:    *conns,
		Duration: *duration,
		Timeout:  *timeout,
		Mix:      mix,
		Ingest:   ingest,
	})
	if err != nil {
		log.Fatalf("swoleload: %v", err)
	}

	fmt.Printf("requests %d  achieved %.1f qps (target %.1f)\n", rep.Requests, rep.AchievedQPS, rep.TargetQPS)
	fmt.Printf("latency ms  p50 %.2f  p90 %.2f  p99 %.2f  p999 %.2f  max %.2f  mean %.2f\n",
		rep.P50ms, rep.P90ms, rep.P99ms, rep.P999ms, rep.MaxMs, rep.MeanMs)
	fmt.Printf("outcomes    ok %d  rejected %d  timeouts %d  errors %d  transport %d\n",
		rep.Outcomes.OK, rep.Outcomes.Rejected, rep.Outcomes.Timeouts, rep.Outcomes.Errors, rep.Outcomes.Transport)
	if ing := rep.Ingest; ing != nil {
		fmt.Printf("ingest      %d batches  rows %d accepted %d rejected  p50 %.2fms  p99 %.2fms  max %.2fms\n",
			ing.Requests, ing.RowsAccepted, ing.RowsRejected, ing.P50ms, ing.P99ms, ing.MaxMs)
		fmt.Printf("ingest      ok %d  rejected %d  timeouts %d  errors %d  transport %d\n",
			ing.Outcomes.OK, ing.Outcomes.Rejected, ing.Outcomes.Timeouts, ing.Outcomes.Errors, ing.Outcomes.Transport)
	}
	if s := rep.Server; s != nil {
		fmt.Printf("server      %d queries  exec %.2fs  queue-wait %.2fs  gc pauses %d (max %.1fms, %d cycles)\n",
			s.Queries, s.ExecSeconds, s.WaitSeconds, s.GCPauses, s.GCPauseMaxSeconds*1000, s.GCCycles)
		if s.IngestRows > 0 {
			fmt.Printf("server      %d rows appended in %.2fs of server-side ingest time\n", s.IngestRows, s.IngestSeconds)
		}
		if s.ShardQueries > 0 {
			fmt.Printf("coordinator %d shard dispatches (swole_shard_queries_total)\n", s.ShardQueries)
		}
	} else {
		fmt.Println("server      /metrics scrape unavailable; no attribution")
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("swoleload: marshal report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("swoleload: write %s: %v", *jsonPath, err)
		}
		log.Printf("report written to %s", *jsonPath)
	}

	if violations := rep.Gate(*gateP99, *gateErrors); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "GATE FAILED: "+v)
		}
		os.Exit(2)
	}
}
