package swole

import "testing"

// partitionQueries are the group-by shapes the radix path covers
// end-to-end: plain group-by aggregation and the eager groupjoin.
var partitionQueries = []struct {
	name string
	q    string
}{
	{"group-agg", "select r_c, sum(r_a) from r where r_x < 50 group by r_c"},
	{"groupjoin-agg", "select r_fk, sum(r_a) from r, s where r_fk = s_pk and s_x < 50 group by r_fk"},
}

// TestQuerySwolePartitionedMatchesVolcano forces the radix-partitioned
// path through the full SQL surface and locks it to the interpreted
// reference engine, cold and warm, at both worker counts.
func TestQuerySwolePartitionedMatchesVolcano(t *testing.T) {
	d := steadyTestDB(t)
	defer d.Close()
	d.SetPartitionMode(PartitionOn)
	defer d.SetPartitionMode(PartitionAuto)
	for _, workers := range []int{1, 4} {
		d.SetWorkers(workers)
		for _, tc := range partitionQueries {
			want, err := d.Query(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			wm := map[int64]int64{}
			for _, row := range want.Rows() {
				wm[row[0]] = row[1]
			}
			for rep := 0; rep < 3; rep++ {
				got, ex, err := d.QuerySwole(tc.q)
				if err != nil {
					t.Fatal(err)
				}
				if !ex.Partitioned || ex.Partitions < 2 {
					t.Fatalf("workers=%d %s rep=%d: Partitioned=%v Partitions=%d, want forced radix path",
						workers, tc.name, rep, ex.Partitioned, ex.Partitions)
				}
				gm := map[int64]int64{}
				for _, row := range got.Rows() {
					gm[row[0]] = row[1]
				}
				if len(gm) != len(wm) {
					t.Fatalf("workers=%d %s rep=%d: %d rows, want %d", workers, tc.name, rep, len(gm), len(wm))
				}
				for k, w := range wm {
					if gm[k] != w {
						t.Errorf("workers=%d %s rep=%d key=%d: got %d, want %d", workers, tc.name, rep, k, gm[k], w)
					}
				}
			}
		}
	}
}

// TestQuerySwolePartitionedSteadyZeroAlloc extends the end-to-end
// zero-allocation gate to the radix path: cached executions of the forced
// partitioned shapes must not allocate, at one worker and at four.
func TestQuerySwolePartitionedSteadyZeroAlloc(t *testing.T) {
	if raceEnabled {
		// Same skip as internal/core's TestPreparedPartitionedZeroAlloc:
		// the race detector's scheduling perturbation keeps redistributing
		// rows across workers, so per-worker partition buffer capacities
		// never converge and AllocsPerRun cannot reach zero. The
		// partitioned path's race-freedom is covered by the parity tests
		// in this file and internal/core's.
		t.Skip("allocation gate is meaningless under the race detector")
	}
	d := steadyTestDB(t)
	defer d.Close()
	d.SetPartitionMode(PartitionOn)
	defer d.SetPartitionMode(PartitionAuto)
	for _, workers := range []int{1, 4} {
		d.SetWorkers(workers)
		for _, tc := range partitionQueries {
			if _, ex, err := d.QuerySwole(tc.q); err != nil {
				t.Fatalf("workers=%d %s: %v", workers, tc.name, err)
			} else if !ex.Partitioned {
				t.Fatalf("workers=%d %s: forced mode did not partition", workers, tc.name)
			}
			// Second execution settles result-array capacity.
			if _, ex, err := d.QuerySwole(tc.q); err != nil {
				t.Fatal(err)
			} else if !ex.PlanCached {
				t.Fatalf("workers=%d %s: second execution missed the plan cache", workers, tc.name)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, _, err := d.QuerySwole(tc.q); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("workers=%d %s: %.1f allocs per cached execution, want 0", workers, tc.name, allocs)
			}
		}
	}
}

// TestSetPartitionModeClearsPlanCache checks mode changes invalidate
// prepared plans, which bake the decision in.
func TestSetPartitionModeClearsPlanCache(t *testing.T) {
	d := steadyTestDB(t)
	defer d.Close()
	q := partitionQueries[0].q
	if _, ex, err := d.QuerySwole(q); err != nil {
		t.Fatal(err)
	} else if ex.Partitioned {
		t.Fatal("128-group micro table partitioned under Auto")
	}
	if d.PlanCacheLen() == 0 {
		t.Fatal("plan cache empty after first execution")
	}
	d.SetPartitionMode(PartitionOn)
	if d.PlanCacheLen() != 0 {
		t.Fatal("SetPartitionMode kept stale plans")
	}
	if _, ex, err := d.QuerySwole(q); err != nil {
		t.Fatal(err)
	} else if !ex.Partitioned {
		t.Fatal("forced mode did not re-plan partitioned")
	}
}
