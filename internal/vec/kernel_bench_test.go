package vec

import (
	"math/rand"
	"testing"
)

// Per-variant throughput benchmarks for the specialized kernel layer. The
// CI kernels job runs these and commits the results as BENCH_kernels.json,
// pinning the trajectory of each variant against its generic reference.

func kernelData[T Number](pct int) (a, b []T, cmp []byte) {
	rng := rand.New(rand.NewSource(3))
	a = make([]T, TileSize)
	b = make([]T, TileSize)
	cmp = make([]byte, TileSize)
	for i := range a {
		a[i] = T(rng.Intn(100))
		b[i] = T(rng.Intn(100))
		cmp[i] = b2i(rng.Intn(100) < pct)
	}
	return
}

func BenchmarkKernelCmpConst(bm *testing.B) {
	bm.Run("generic/w8", func(bm *testing.B) {
		a, _, cmp := kernelData[int8](50)
		bm.SetBytes(TileSize)
		for i := 0; i < bm.N; i++ {
			CmpConstLT(a, 50, cmp)
		}
	})
	bm.Run("unrolled/w8", func(bm *testing.B) {
		a, _, cmp := kernelData[int8](50)
		bm.SetBytes(TileSize)
		for i := 0; i < bm.N; i++ {
			CmpConstLTU(a, 50, cmp)
		}
	})
	bm.Run("generic/w64", func(bm *testing.B) {
		a, _, cmp := kernelData[int64](50)
		bm.SetBytes(TileSize * 8)
		for i := 0; i < bm.N; i++ {
			CmpConstLT(a, 50, cmp)
		}
	})
	bm.Run("unrolled/w64", func(bm *testing.B) {
		a, _, cmp := kernelData[int64](50)
		bm.SetBytes(TileSize * 8)
		for i := 0; i < bm.N; i++ {
			CmpConstLTU(a, 50, cmp)
		}
	})
}

func BenchmarkKernelWiden(bm *testing.B) {
	out := make([]int64, TileSize)
	bm.Run("generic/w8", func(bm *testing.B) {
		a, _, _ := kernelData[int8](50)
		bm.SetBytes(TileSize)
		for i := 0; i < bm.N; i++ {
			Widen(a, out)
		}
	})
	bm.Run("unrolled/w8", func(bm *testing.B) {
		a, _, _ := kernelData[int8](50)
		bm.SetBytes(TileSize)
		for i := 0; i < bm.N; i++ {
			WidenU(a, out)
		}
	})
	bm.Run("generic/w32", func(bm *testing.B) {
		a, _, _ := kernelData[int32](50)
		bm.SetBytes(TileSize * 4)
		for i := 0; i < bm.N; i++ {
			Widen(a, out)
		}
	})
	bm.Run("unrolled/w32", func(bm *testing.B) {
		a, _, _ := kernelData[int32](50)
		bm.SetBytes(TileSize * 4)
		for i := 0; i < bm.N; i++ {
			WidenU(a, out)
		}
	})
}

func BenchmarkKernelSumMasked(bm *testing.B) {
	bm.Run("generic/w32", func(bm *testing.B) {
		a, _, cmp := kernelData[int32](50)
		bm.SetBytes(TileSize * 4)
		for i := 0; i < bm.N; i++ {
			sinkI64 += SumMasked(a, cmp)
		}
	})
	bm.Run("unrolled/w32", func(bm *testing.B) {
		a, _, cmp := kernelData[int32](50)
		bm.SetBytes(TileSize * 4)
		for i := 0; i < bm.N; i++ {
			sinkI64 += SumMaskedU(a, cmp)
		}
	})
	bm.Run("generic-prod/w32", func(bm *testing.B) {
		a, b, cmp := kernelData[int32](50)
		bm.SetBytes(TileSize * 8)
		for i := 0; i < bm.N; i++ {
			sinkI64 += SumProdMasked(a, b, cmp)
		}
	})
	bm.Run("unrolled-prod/w32", func(bm *testing.B) {
		a, b, cmp := kernelData[int32](50)
		bm.SetBytes(TileSize * 8)
		for i := 0; i < bm.N; i++ {
			sinkI64 += SumProdMaskedU(a, b, cmp)
		}
	})
}

func BenchmarkKernelMaskKeys(bm *testing.B) {
	out := make([]int64, TileSize)
	bm.Run("generic/w32", func(bm *testing.B) {
		a, _, cmp := kernelData[int32](50)
		bm.SetBytes(TileSize * 4)
		for i := 0; i < bm.N; i++ {
			MaskKeys(a, cmp, -1, out)
		}
	})
	bm.Run("unrolled/w32", func(bm *testing.B) {
		a, _, cmp := kernelData[int32](50)
		bm.SetBytes(TileSize * 4)
		for i := 0; i < bm.N; i++ {
			MaskKeysU(a, cmp, -1, out)
		}
	})
}

func BenchmarkKernelSel(bm *testing.B) {
	sel := make([]int32, TileSize)
	for _, pct := range []int{1, 50, 99} {
		_, _, cmp := kernelData[int32](pct)
		bm.Run("branch/sel"+itoa(pct), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				sinkInt += SelFromCmpBranch(cmp, sel)
			}
		})
		bm.Run("nobranch/sel"+itoa(pct), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				sinkInt += SelFromCmpNoBranch(cmp, sel)
			}
		})
		bm.Run("adaptive/sel"+itoa(pct), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				n, _ := SelFromCmpAdaptive(cmp, sel)
				sinkInt += n
			}
		})
	}
}

func BenchmarkKernelSumSel(bm *testing.B) {
	a, _, cmp := kernelData[int32](50)
	sel := make([]int32, TileSize)
	n := SelFromCmpBranch(cmp, sel)
	bm.Run("generic", func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			sinkI64 += SumSel(a, sel, n)
		}
	})
	bm.Run("unrolled", func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			sinkI64 += SumSelU(a, sel, n)
		}
	})
}
