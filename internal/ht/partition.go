package ht

// Radix partitioning: the paper's pullup philosophy applied one level
// below the operators. A hash table that exceeds the cache turns every
// Lookup into a random DRAM access; SWOLE's thesis — trade extra
// sequential work for access locality — says to split that one random
// pass into two sequential ones. Phase 1 appends each (key, value) pair
// into the partition selected by the top bits of the key's hash: a pure
// sequential write per tuple, no probes. Phase 2 visits one partition at
// a time and aggregates (or builds) it in a table 1/P the size, which the
// cost model picks P to make cache-resident. Partitions are disjoint in
// key space, so phase 2 parallelizes across partitions with no shared
// mutable state and no final cross-worker fold.
//
// Partitioner is one worker's phase-1 buffer set; PartitionedJoinTable is
// the phase-2 structure for equijoin build sides (AggTable, recycled per
// partition, serves aggregation phase 2 directly).

// MaxPartitions bounds the radix fan-out. 1024 partitions keep the
// per-worker slice-header array trivial while letting a ~256 MB table be
// cut into L2-sized pieces.
const MaxPartitions = 1024

// PartitionCount rounds a requested fan-out to the power of two the
// partitioning primitives require, clamped to [1, MaxPartitions].
func PartitionCount(parts int) int {
	if parts < 1 {
		return 1
	}
	if parts > MaxPartitions {
		parts = MaxPartitions
	}
	p := 1
	for p < parts {
		p <<= 1
	}
	return p
}

// partitionShift returns the right-shift that maps a 64-bit hash to a
// partition index in [0, parts) using the hash's top bits. parts must be
// a power of two; parts == 1 shifts by 64, which Go defines as 0.
func partitionShift(parts int) uint {
	s := uint(64)
	for p := 1; p < parts; p <<= 1 {
		s--
	}
	return s
}

// PartitionOf returns key's partition under the given shift — the same
// routing Partitioner.Append and PartitionedJoinTable use, exposed so
// tests and phase-2 consumers can agree on placement.
func PartitionOf(key int64, shift uint) int {
	return int(hash64(uint64(key)) >> shift)
}

// Partitioner is one worker's per-partition (key, value) append buffers.
// Appends are sequential writes into the partition selected by the key
// hash's top bits; a scan over the buffered pairs of one partition is a
// sequential read. Like the tables in this package, a Partitioner is
// built to be recycled: Reset truncates every buffer but keeps its
// capacity, so a steady-state workload appends into warm memory and
// allocates nothing after the first run at a given shape.
type Partitioner struct {
	shift uint
	keys  [][]int64
	vals  [][]int64
}

// NewPartitioner returns a partitioner with the given fan-out (rounded to
// a power of two, clamped to [1, MaxPartitions]).
func NewPartitioner(parts int) *Partitioner {
	parts = PartitionCount(parts)
	return &Partitioner{
		shift: partitionShift(parts),
		keys:  make([][]int64, parts),
		vals:  make([][]int64, parts),
	}
}

// Parts returns the fan-out.
func (p *Partitioner) Parts() int { return len(p.keys) }

// Shift returns the hash shift that routes keys to partitions.
func (p *Partitioner) Shift() uint { return p.shift }

// Reset truncates every partition buffer, keeping capacity for reuse.
func (p *Partitioner) Reset() {
	for i := range p.keys {
		p.keys[i] = p.keys[i][:0]
		p.vals[i] = p.vals[i][:0]
	}
}

// Append buffers one (key, value) pair in key's partition.
func (p *Partitioner) Append(key, val int64) {
	i := hash64(uint64(key)) >> p.shift
	p.keys[i] = append(p.keys[i], key)
	p.vals[i] = append(p.vals[i], val)
}

// Part returns partition i's buffered keys and values. The slices are
// owned by the partitioner and invalidated by the next Reset.
func (p *Partitioner) Part(i int) (keys, vals []int64) {
	return p.keys[i], p.vals[i]
}

// Rows returns the total number of buffered pairs.
func (p *Partitioner) Rows() int {
	n := 0
	for _, k := range p.keys {
		n += len(k)
	}
	return n
}

// PairBytes approximates the partitioner's buffered-data footprint (two
// int64 per pair), for memory accounting and the cost model.
func (p *Partitioner) PairBytes() int { return 16 * p.Rows() }

// PartitionedJoinTable is a radix-partitioned equijoin build side: P
// independent JoinTables, each covering one slice of the hash space. The
// two-phase build writes (key, row) pairs through Partitioners in phase 1;
// in phase 2 each worker claims whole partitions and inserts into that
// partition's sub-table — disjoint key ranges, so no synchronization —
// each sub-table 1/P the footprint of a monolithic build and therefore
// cache-resident during both its build and its probes.
type PartitionedJoinTable struct {
	shift uint
	subs  []*JoinTable
}

// NewPartitionedJoinTable returns a partitioned join table with the given
// fan-out (rounded to a power of two, clamped to [1, MaxPartitions]) and
// room for about hint total keys spread across the sub-tables.
func NewPartitionedJoinTable(parts, hint int) *PartitionedJoinTable {
	parts = PartitionCount(parts)
	sub := hint / parts
	t := &PartitionedJoinTable{
		shift: partitionShift(parts),
		subs:  make([]*JoinTable, parts),
	}
	for i := range t.subs {
		t.subs[i] = NewJoinTable(sub)
	}
	return t
}

// Parts returns the fan-out.
func (t *PartitionedJoinTable) Parts() int { return len(t.subs) }

// Sub returns partition i's sub-table. Phase-2 build workers that have
// claimed partition i insert into it directly; distinct partitions may be
// built concurrently.
func (t *PartitionedJoinTable) Sub(i int) *JoinTable { return t.subs[i] }

// PartitionOf returns the partition key routes to.
func (t *PartitionedJoinTable) PartitionOf(key int64) int {
	return int(hash64(uint64(key)) >> t.shift)
}

// Reset empties every sub-table in O(parts), keeping capacity.
func (t *PartitionedJoinTable) Reset() {
	for _, s := range t.subs {
		s.Reset()
	}
}

// Len returns the total number of keys across all partitions.
func (t *PartitionedJoinTable) Len() int {
	n := 0
	for _, s := range t.subs {
		n += s.Len()
	}
	return n
}

// Insert adds key -> row to key's partition, reporting whether the key
// was new. Safe only for callers that serialize inserts per partition
// (the phase-2 contract).
func (t *PartitionedJoinTable) Insert(key int64, row int32) bool {
	return t.subs[t.PartitionOf(key)].Insert(key, row)
}

// Probe returns the build row matching key and whether a match exists.
// Read-only; safe for concurrent probes once the build phase is done.
func (t *PartitionedJoinTable) Probe(key int64) (int32, bool) {
	return t.subs[t.PartitionOf(key)].Probe(key)
}
