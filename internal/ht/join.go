package ht

// JoinTable maps a unique 64-bit join key to the build-side row that carries
// it. Every join in the paper's workloads is a foreign-key/primary-key join,
// so keys on the build side are unique; duplicate inserts keep the first row
// and report false.
type JoinTable struct {
	keys  []int64
	rows  []int32
	state []byte
	len   int
	mask  uint64

	// Probes counts total probe steps, exposed for cost-model validation.
	Probes uint64
}

// NewJoinTable returns a join table with room for about hint keys.
func NewJoinTable(hint int) *JoinTable {
	capacity := nextPow2(hint * 2)
	return &JoinTable{
		keys:  make([]int64, capacity),
		rows:  make([]int32, capacity),
		state: make([]byte, capacity),
		mask:  uint64(capacity - 1),
	}
}

// Len returns the number of keys in the table.
func (t *JoinTable) Len() int { return t.len }

// Cap returns the slot capacity.
func (t *JoinTable) Cap() int { return len(t.keys) }

// SlotBytes returns the approximate size of one slot for cache-class
// placement by the cost model.
func (t *JoinTable) SlotBytes() int { return 8 + 4 + 1 }

// Insert adds key -> row, reporting whether the key was new.
func (t *JoinTable) Insert(key int64, row int32) bool {
	if t.len >= len(t.keys)*3/4 {
		t.grow()
	}
	i := hash64(uint64(key)) & t.mask
	for {
		t.Probes++
		if t.state[i] == slotEmpty {
			t.state[i] = slotFull
			t.keys[i] = key
			t.rows[i] = row
			t.len++
			return true
		}
		if t.keys[i] == key {
			return false
		}
		i = (i + 1) & t.mask
	}
}

// Probe returns the build row matching key and whether a match exists.
func (t *JoinTable) Probe(key int64) (int32, bool) {
	i := hash64(uint64(key)) & t.mask
	for {
		t.Probes++
		if t.state[i] == slotEmpty {
			return 0, false
		}
		if t.keys[i] == key {
			return t.rows[i], true
		}
		i = (i + 1) & t.mask
	}
}

func (t *JoinTable) grow() {
	oldKeys, oldRows, oldState := t.keys, t.rows, t.state
	capacity := len(t.keys) * 2
	t.keys = make([]int64, capacity)
	t.rows = make([]int32, capacity)
	t.state = make([]byte, capacity)
	t.mask = uint64(capacity - 1)
	t.len = 0
	for i := range oldKeys {
		if oldState[i] == slotFull {
			t.Insert(oldKeys[i], oldRows[i])
		}
	}
}

// SetTable is a set of 64-bit keys, the hash-based semijoin structure that
// positional bitmaps replace in SWOLE (Section III-D).
type SetTable struct {
	keys  []int64
	state []byte
	len   int
	mask  uint64

	// Probes counts total probe steps, exposed for cost-model validation.
	Probes uint64
}

// NewSetTable returns a set with room for about hint keys.
func NewSetTable(hint int) *SetTable {
	capacity := nextPow2(hint * 2)
	return &SetTable{
		keys:  make([]int64, capacity),
		state: make([]byte, capacity),
		mask:  uint64(capacity - 1),
	}
}

// Len returns the number of keys in the set.
func (t *SetTable) Len() int { return t.len }

// Insert adds key, reporting whether it was new.
func (t *SetTable) Insert(key int64) bool {
	if t.len >= len(t.keys)*3/4 {
		t.grow()
	}
	i := hash64(uint64(key)) & t.mask
	for {
		t.Probes++
		if t.state[i] == slotEmpty {
			t.state[i] = slotFull
			t.keys[i] = key
			t.len++
			return true
		}
		if t.keys[i] == key {
			return false
		}
		i = (i + 1) & t.mask
	}
}

// Contains reports whether key is in the set.
func (t *SetTable) Contains(key int64) bool {
	i := hash64(uint64(key)) & t.mask
	for {
		t.Probes++
		if t.state[i] == slotEmpty {
			return false
		}
		if t.keys[i] == key {
			return true
		}
		i = (i + 1) & t.mask
	}
}

func (t *SetTable) grow() {
	oldKeys, oldState := t.keys, t.state
	capacity := len(t.keys) * 2
	t.keys = make([]int64, capacity)
	t.state = make([]byte, capacity)
	t.mask = uint64(capacity - 1)
	t.len = 0
	for i := range oldKeys {
		if oldState[i] == slotFull {
			t.Insert(oldKeys[i])
		}
	}
}
