package expr

import "testing"

func cmp(op CmpOp, col string, v int64) *Cmp {
	return &Cmp{Op: op, L: NewCol(col), R: &Const{Val: v}}
}

func TestNNF(t *testing.T) {
	cases := []struct {
		name string
		in   Expr
		want string
	}{
		{
			"negated comparison flips",
			&Logic{Op: Not, Args: []Expr{cmp(LT, "a", 5)}},
			"a >= 5",
		},
		{
			"double negation cancels",
			&Logic{Op: Not, Args: []Expr{&Logic{Op: Not, Args: []Expr{cmp(EQ, "a", 1)}}}},
			"a = 1",
		},
		{
			"de morgan over and",
			&Logic{Op: Not, Args: []Expr{&Logic{Op: And, Args: []Expr{
				cmp(LT, "a", 5), cmp(GE, "b", 7),
			}}}},
			"(a >= 5) or (b < 7)",
		},
		{
			"de morgan over or",
			&Logic{Op: Not, Args: []Expr{&Logic{Op: Or, Args: []Expr{
				cmp(EQ, "a", 1), cmp(NE, "b", 2),
			}}}},
			"(a <> 1) and (b = 2)",
		},
		{
			"nested not under de morgan",
			&Logic{Op: Not, Args: []Expr{&Logic{Op: Or, Args: []Expr{
				cmp(LT, "a", 5),
				&Logic{Op: Not, Args: []Expr{cmp(GT, "b", 3)}},
			}}}},
			"(a >= 5) and (b > 3)",
		},
		{
			"same-op nests flatten",
			&Logic{Op: Or, Args: []Expr{
				cmp(LT, "a", 1),
				&Logic{Op: Or, Args: []Expr{cmp(LT, "b", 2), cmp(LT, "c", 3)}},
			}},
			"(a < 1) or (b < 2) or (c < 3)",
		},
		{
			"between keeps its not wrapper",
			&Logic{Op: Not, Args: []Expr{
				&Between{X: NewCol("a"), Lo: &Const{Val: 1}, Hi: &Const{Val: 5}},
			}},
			"not (a between 1 and 5)",
		},
		{
			"in keeps its not wrapper",
			&Logic{Op: Not, Args: []Expr{
				&In{X: NewCol("a"), List: []Expr{&Const{Val: 1}, &Const{Val: 2}}},
			}},
			"not (a in (1, 2))",
		},
		{
			"negated like folds into the flag",
			&Logic{Op: Not, Args: []Expr{&Like{X: NewCol("s"), Pattern: "a%"}}},
			"s not like 'a%'",
		},
		{
			"single-arg logic unwraps",
			&Logic{Op: And, Args: []Expr{cmp(LT, "a", 9)}},
			"a < 9",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := NNF(tc.in).String(); got != tc.want {
				t.Errorf("NNF = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestNNFNilAndLeafPassThrough(t *testing.T) {
	if NNF(nil) != nil {
		t.Error("NNF(nil) != nil")
	}
	leaf := cmp(LT, "a", 5)
	if NNF(leaf) != leaf {
		t.Error("NNF should return an untouched leaf as-is (structure sharing)")
	}
}

func TestOrTerms(t *testing.T) {
	or := &Logic{Op: Or, Args: []Expr{cmp(LT, "a", 1), cmp(LT, "b", 2), cmp(LT, "c", 3)}}
	if n := len(OrTerms(or)); n != 3 {
		t.Errorf("OrTerms over a 3-way OR returned %d terms", n)
	}
	if n := len(OrTerms(cmp(LT, "a", 1))); n != 1 {
		t.Errorf("OrTerms over a leaf returned %d terms, want 1", n)
	}
	and := &Logic{Op: And, Args: []Expr{cmp(LT, "a", 1), cmp(LT, "b", 2)}}
	if n := len(OrTerms(and)); n != 1 {
		t.Errorf("OrTerms over an AND returned %d terms, want 1 (the AND itself)", n)
	}
}
