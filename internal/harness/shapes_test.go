package harness

import (
	"os"
	"testing"
	"time"

	"github.com/reprolab/swole/internal/tpch"
)

// TestPaperShapes verifies the qualitative claims of EXPERIMENTS.md by
// actually measuring at a moderate scale. Timing assertions are inherently
// machine-sensitive, so the test only runs when SWOLE_SHAPES=1 is set
// (it is part of the EXPERIMENTS.md regeneration procedure, not of the
// default `go test ./...`).
func TestPaperShapes(t *testing.T) {
	if os.Getenv("SWOLE_SHAPES") != "1" {
		t.Skip("set SWOLE_SHAPES=1 to run the measured shape checks")
	}
	cfg := Config{SF: 0.05, MicroR: 1_000_000, Reps: 3}

	t.Run("Fig6", func(t *testing.T) {
		rows, err := cfg.Fig6()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			vol := r.Runtimes[tpch.Volcano]
			dc := r.Runtimes[tpch.DataCentric]
			hy := r.Runtimes[tpch.Hybrid]
			sw := r.Runtimes[tpch.Swole]
			// Sanity check role: hand-coded kernels beat the interpreter.
			if vol < dc {
				t.Errorf("%s: volcano (%v) beat data-centric (%v)", r.Query, vol, dc)
			}
			// SWOLE never loses badly to hybrid (20% measurement slack).
			if float64(sw) > 1.2*float64(hy) {
				t.Errorf("%s: swole (%v) lost to hybrid (%v)", r.Query, sw, hy)
			}
			// The headline: Q4's bitmap semijoin wins by a large factor.
			if r.Query == tpch.Q4 && float64(sw) > 0.5*float64(hy) {
				t.Errorf("Q4: swole (%v) should be >=2x faster than hybrid (%v)", sw, hy)
			}
		}
	})

	t.Run("Fig8a", func(t *testing.T) {
		figs := cfg.Fig8()
		mul := figs[0]
		dc := mul.SeriesByName("datacentric")
		vm := mul.SeriesByName("value-masking")
		hy := mul.SeriesByName("hybrid")
		// Branch-misprediction hump: mid-sweep slower than both ends.
		mid := at(dc, 50)
		if mid <= at(dc, 0) || mid <= at(dc, 100) {
			t.Errorf("data-centric hump missing: 0%%=%v 50%%=%v 100%%=%v", at(dc, 0), mid, at(dc, 100))
		}
		// Value masking is flat: max/min under 1.5.
		lo, hi := minMax(vm)
		if float64(hi) > 1.5*float64(lo) {
			t.Errorf("value masking not flat: min=%v max=%v", lo, hi)
		}
		// VM beats hybrid in the upper half of the sweep.
		if at(vm, 90) > at(hy, 90) {
			t.Errorf("VM (%v) should beat hybrid (%v) at 90%%", at(vm, 90), at(hy, 90))
		}
	})

	t.Run("Fig8b", func(t *testing.T) {
		div := cfg.Fig8()[1]
		vm := div.SeriesByName("value-masking")
		hy := div.SeriesByName("hybrid")
		// Compute-bound: hybrid wins at low selectivity by a wide margin.
		if at(hy, 10) > at(vm, 10) {
			t.Errorf("hybrid (%v) should beat VM (%v) at 10%% for division", at(hy, 10), at(vm, 10))
		}
	})

	t.Run("Fig9", func(t *testing.T) {
		figs := cfg.Fig9()
		big := figs[len(figs)-1] // largest cardinality panel
		km := big.SeriesByName("key-masking")
		vm := big.SeriesByName("value-masking")
		hy := big.SeriesByName("hybrid")
		// KM never behind VM on the big table at moderate+ selectivity.
		for _, sel := range []float64{50, 90, 100} {
			if float64(at(km, sel)) > 1.2*float64(at(vm, sel)) {
				t.Errorf("KM (%v) behind VM (%v) at %v%%", at(km, sel), at(vm, sel), sel)
			}
		}
		// Hybrid wins at low selectivity on the big table (Voodoo
		// contradiction).
		if at(hy, 10) > at(km, 10) {
			t.Errorf("hybrid (%v) should beat KM (%v) at 10%% on a big table", at(hy, 10), at(km, 10))
		}
	})

	t.Run("Fig10", func(t *testing.T) {
		for _, fig := range cfg.Fig10() {
			am := fig.SeriesByName("access-merging")
			vm := fig.SeriesByName("value-masking")
			if at(am, 50) > at(vm, 50) {
				t.Errorf("%s: merging (%v) should beat masking (%v)", fig.ID, at(am, 50), at(vm, 50))
			}
		}
	})

	t.Run("Fig11", func(t *testing.T) {
		for _, fig := range cfg.Fig11() {
			bm := fig.SeriesByName("positional-bitmap")
			hy := fig.SeriesByName("hybrid")
			if at(bm, 50) > at(hy, 50) {
				t.Errorf("%s: bitmap (%v) should beat hybrid (%v) at 50%%", fig.ID, at(bm, 50), at(hy, 50))
			}
		}
	})

	t.Run("Fig12", func(t *testing.T) {
		small := cfg.Fig12()[0]
		ea := small.SeriesByName("eager-aggregation")
		lo, hi := minMax(ea)
		if float64(hi) > 1.5*float64(lo) {
			t.Errorf("EA not flat: min=%v max=%v", lo, hi)
		}
	})
}

func at(s *Series, x float64) time.Duration {
	for _, p := range s.Points {
		if p.X == x {
			return p.Runtime
		}
	}
	return 0
}

func minMax(s *Series) (lo, hi time.Duration) {
	lo, hi = time.Duration(1<<62), 0
	for _, p := range s.Points {
		if p.Runtime < lo {
			lo = p.Runtime
		}
		if p.Runtime > hi {
			hi = p.Runtime
		}
	}
	return
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		ID:     "figX",
		XLabel: "sel(%)",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 0, Runtime: time.Millisecond}, {X: 10, Runtime: 2 * time.Millisecond}}},
			{Name: "b", Points: []Point{{X: 0, Runtime: 3 * time.Millisecond}}},
		},
	}
	got := f.CSV()
	want := "x,a,b\n0,1.000,3.000\n10,2.000,\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}
