package swole

import (
	"testing"
)

// cacheTestDB builds a small mutable table for invalidation tests.
func cacheTestDB(t *testing.T, scale int64) *DB {
	t.Helper()
	d := NewDB()
	n := 4096
	a := make([]int64, n)
	x := make([]int64, n)
	c := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = scale * int64(i%7)
		x[i] = int64(i % 10)
		c[i] = int64(i % 5)
	}
	if err := d.CreateTable("t", IntColumn("a", a), IntColumn("x", x), IntColumn("c", c)); err != nil {
		t.Fatal(err)
	}
	return d
}

// rowsAsMap keys a two-column result by its first column.
func rowsAsMap(t *testing.T, r *Result) map[int64]int64 {
	t.Helper()
	out := map[int64]int64{}
	for _, row := range r.Rows() {
		if len(row) != 2 {
			t.Fatalf("want 2 columns, got %d", len(row))
		}
		out[row[0]] = row[1]
	}
	return out
}

// TestPlanCacheHit checks a repeated statement is served from the plan
// cache with the same answer, and that a whitespace-reformatted spelling
// shares the entry.
func TestPlanCacheHit(t *testing.T) {
	d := cacheTestDB(t, 1)
	defer d.Close()
	q := "select sum(a) from t where x < 5"
	res1, ex1, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex1.Technique == "interpreter-fallback" {
		t.Fatalf("shape not matched: %+v", ex1)
	}
	if ex1.PlanCached {
		t.Error("first execution reported PlanCached")
	}
	want := res1.Rows()[0][0]

	res2, ex2, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ex2.PlanCached {
		t.Error("second execution not served from plan cache")
	}
	if got := res2.Rows()[0][0]; got != want {
		t.Errorf("cached answer %d, want %d", got, want)
	}

	// A reformatted spelling normalizes onto the same plan.
	res3, ex3, err := d.QuerySwole("select  sum(a)\n\tfrom t   where x < 5")
	if err != nil {
		t.Fatal(err)
	}
	if !ex3.PlanCached {
		t.Error("whitespace-normalized spelling missed the cache")
	}
	if got := res3.Rows()[0][0]; got != want {
		t.Errorf("normalized-spelling answer %d, want %d", got, want)
	}
	// Both raw spellings are now aliased.
	if n := d.PlanCacheLen(); n != 2 {
		t.Errorf("plan cache holds %d raw keys, want 2", n)
	}
}

// TestPlanCacheInvalidation is the correctness core of the cache: after a
// table is replaced, cached plans and statistics must not serve stale
// answers, and the fresh answers must match the interpreted engine.
func TestPlanCacheInvalidation(t *testing.T) {
	d := cacheTestDB(t, 1)
	defer d.Close()
	scalarQ := "select sum(a) from t where x < 5"
	groupQ := "select c, sum(a) from t where x < 5 group by c"

	for _, q := range []string{scalarQ, groupQ, scalarQ, groupQ} {
		if _, _, err := d.QuerySwole(q); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.PlanCacheLen(); n != 2 {
		t.Fatalf("plan cache holds %d entries, want 2", n)
	}
	if d.engine.StatsCacheLen() == 0 {
		t.Fatal("stats cache empty after repeated planning")
	}

	// Replace t with data scaled 3x: every cached plan and statistic for
	// t must go.
	d2 := cacheTestDB(t, 3) // reference DB with the new data
	defer d2.Close()
	n := 4096
	a := make([]int64, n)
	x := make([]int64, n)
	c := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = 3 * int64(i%7)
		x[i] = int64(i % 10)
		c[i] = int64(i % 5)
	}
	if err := d.CreateTable("t", IntColumn("a", a), IntColumn("x", x), IntColumn("c", c)); err != nil {
		t.Fatal(err)
	}
	if got := d.PlanCacheLen(); got != 0 {
		t.Errorf("plan cache holds %d entries after table replacement, want 0", got)
	}
	if got := d.engine.StatsCacheLen(); got != 0 {
		t.Errorf("stats cache holds %d entries after table replacement, want 0", got)
	}

	// Scalar: answer must match the interpreted engine on the new data.
	wantRes, err := d2.Query(scalarQ)
	if err != nil {
		t.Fatal(err)
	}
	got, ex, err := d.QuerySwole(scalarQ)
	if err != nil {
		t.Fatal(err)
	}
	if ex.PlanCached {
		t.Error("post-mutation execution claims a plan cache hit")
	}
	if g, w := got.Rows()[0][0], wantRes.Rows()[0][0]; g != w {
		t.Errorf("post-mutation scalar answer %d, want %d (stale cache?)", g, w)
	}

	// Group-by: compare as maps against the interpreted engine.
	wantG, err := d2.Query(groupQ)
	if err != nil {
		t.Fatal(err)
	}
	gotG, _, err := d.QuerySwole(groupQ)
	if err != nil {
		t.Fatal(err)
	}
	wm, gm := rowsAsMap(t, wantG), rowsAsMap(t, gotG)
	if len(wm) != len(gm) {
		t.Fatalf("group counts differ: got %d, want %d", len(gm), len(wm))
	}
	for k, w := range wm {
		if gm[k] != w {
			t.Errorf("group %d: got %d, want %d", k, gm[k], w)
		}
	}
}

// TestInvalidationGranularity checks eviction is per-table: creating or
// replacing one table must not evict cached plans that read only other
// tables.
func TestInvalidationGranularity(t *testing.T) {
	d := cacheTestDB(t, 1) // table "t"
	defer d.Close()
	q := "select sum(a) from t where x < 5"
	res1, _, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	want := res1.Rows()[0][0]
	if d.PlanCacheLen() != 1 {
		t.Fatalf("plan cache holds %d entries, want 1", d.PlanCacheLen())
	}

	// Creating an unrelated table must not touch t's plan.
	vals := make([]int64, 128)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := d.CreateTable("u", IntColumn("v", vals)); err != nil {
		t.Fatal(err)
	}
	if d.PlanCacheLen() != 1 {
		t.Errorf("creating unrelated table evicted t's plan (cache len %d, want 1)", d.PlanCacheLen())
	}
	res2, ex, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.PlanCached {
		t.Error("t's plan missed the cache after unrelated CreateTable")
	}
	if got := res2.Rows()[0][0]; got != want {
		t.Errorf("answer changed after unrelated CreateTable: got %d, want %d", got, want)
	}

	// Cache a plan on u too, then replace u: only u's plan goes.
	if _, _, err := d.QuerySwole("select sum(v) from u where v < 100"); err != nil {
		t.Fatal(err)
	}
	if d.PlanCacheLen() != 2 {
		t.Fatalf("plan cache holds %d entries, want 2", d.PlanCacheLen())
	}
	if err := d.CreateTable("u", IntColumn("v", vals[:64])); err != nil {
		t.Fatal(err)
	}
	if d.PlanCacheLen() != 1 {
		t.Errorf("replacing u left cache len %d, want 1 (t's plan only)", d.PlanCacheLen())
	}
	if _, ex, err = d.QuerySwole(q); err != nil {
		t.Fatal(err)
	} else if !ex.PlanCached {
		t.Error("t's plan evicted by u's replacement")
	}

	// Re-sharding is a layout change, not a data change: it must evict
	// exactly the re-sharded table's plans (they bake in the fan-out) while
	// other tables' plans and the sampling statistics survive.
	if _, _, err := d.QuerySwole("select sum(v) from u where v < 100"); err != nil {
		t.Fatal(err)
	}
	if d.PlanCacheLen() != 2 {
		t.Fatalf("plan cache holds %d entries, want 2", d.PlanCacheLen())
	}
	statsBefore := d.engine.StatsCacheLen()
	if err := d.ShardTable("t", 2); err != nil {
		t.Fatal(err)
	}
	if d.PlanCacheLen() != 1 {
		t.Errorf("re-sharding t left cache len %d, want 1 (u's plan only)", d.PlanCacheLen())
	}
	if got := d.engine.StatsCacheLen(); got != statsBefore {
		t.Errorf("re-sharding dropped statistics: %d, want %d (layout changes keep stats)", got, statsBefore)
	}
	if _, ex, err = d.QuerySwole("select sum(v) from u where v < 100"); err != nil {
		t.Fatal(err)
	} else if !ex.PlanCached {
		t.Error("u's plan evicted by t's re-sharding")
	}
	res3, ex, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.PlanCached {
		t.Error("t's sharded recompile claims a cache hit")
	}
	if ex.ShardCount != 2 {
		t.Errorf("ShardCount = %d after ShardTable(t, 2), want 2", ex.ShardCount)
	}
	if got := res3.Rows()[0][0]; got != want {
		t.Errorf("answer changed after sharding: got %d, want %d", got, want)
	}

	// Appending is a data change in one table: it must evict exactly that
	// table's plans, and — unlike CreateTable — *merge* the table's cached
	// statistics with the delta rather than dropping them. Other tables'
	// plans and statistics survive untouched.
	statsBefore = d.engine.StatsCacheLen()
	if statsBefore == 0 {
		t.Fatal("no stats cached before append (test is vacuous)")
	}
	uStats := "select sum(v) from u where v < 100"
	if err := d.AppendRows("t", [][]int64{{7, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if got := d.engine.StatsCacheLen(); got != statsBefore {
		t.Errorf("append left %d stats entries, want %d (merged in place, not dropped)", got, statsBefore)
	}
	if d.PlanCacheLen() != 1 {
		t.Errorf("append to t left cache len %d, want 1 (u's plan only)", d.PlanCacheLen())
	}
	if _, ex, err = d.QuerySwole(uStats); err != nil {
		t.Fatal(err)
	} else if !ex.PlanCached {
		t.Error("u's plan evicted by t's append")
	}
	res4, ex, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.PlanCached {
		t.Error("t's stale plan served after append")
	}
	if got, want := res4.Rows()[0][0], want+7; got != want {
		t.Errorf("post-append answer = %d, want %d", got, want)
	}
}

// TestSetWorkersClearsCache checks worker reconfiguration invalidates
// prepared plans (they bake in their worker count) and answers stay
// identical across counts.
func TestSetWorkersClearsCache(t *testing.T) {
	d := cacheTestDB(t, 1)
	defer d.Close()
	q := "select sum(a) from t where x < 5"
	res1, _, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	want := res1.Rows()[0][0]
	if d.PlanCacheLen() != 1 {
		t.Fatal("expected one cached plan")
	}
	d.SetWorkers(4)
	if d.PlanCacheLen() != 0 {
		t.Error("SetWorkers left stale plans cached")
	}
	res2, ex, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.PlanCached {
		t.Error("first post-SetWorkers execution claims a cache hit")
	}
	if got := res2.Rows()[0][0]; got != want {
		t.Errorf("answer changed across worker counts: got %d, want %d", got, want)
	}
}

// TestNormalizationKeepsLiterals pins the quote-awareness of the cache's
// whitespace normalization: two statements that differ only inside a
// quoted string literal are different statements and must not share a
// normalized cache entry, while whitespace outside literals still
// collapses onto one plan.
func TestNormalizationKeepsLiterals(t *testing.T) {
	d := NewDB()
	defer d.Close()
	if err := d.CreateTable("r",
		StringColumn("s", []string{"red apple", "red  apple", "red apple", "pear"}),
		IntColumn("v", []int64{1, 10, 100, 1000}),
	); err != nil {
		t.Fatal(err)
	}

	// One space vs two inside the literal: distinct predicates, distinct
	// answers. A normalization that collapsed whitespace inside literals
	// would alias them onto one cached plan and serve the wrong sum.
	one := "select sum(v) from r where s = 'red apple'"
	two := "select sum(v) from r where s = 'red  apple'"
	res1, _, err := d.QuerySwole(one)
	if err != nil {
		t.Fatal(err)
	}
	if got := res1.Rows()[0][0]; got != 101 {
		t.Fatalf("sum for 'red apple' = %d, want 101", got)
	}
	res2, ex2, err := d.QuerySwole(two)
	if err != nil {
		t.Fatal(err)
	}
	if ex2.PlanCached {
		t.Error("statement differing only inside a quoted literal hit the other statement's plan")
	}
	if got := res2.Rows()[0][0]; got != 10 {
		t.Fatalf("sum for 'red  apple' = %d, want 10", got)
	}

	// Whitespace outside literals still normalizes onto the cached plan,
	// and the literal's interior survives the round trip.
	res3, ex3, err := d.QuerySwole("select  sum(v)\n\tfrom r where s = 'red  apple'")
	if err != nil {
		t.Fatal(err)
	}
	if !ex3.PlanCached {
		t.Error("reformatted spelling (whitespace outside the literal) missed the cache")
	}
	if got := res3.Rows()[0][0]; got != 10 {
		t.Fatalf("reformatted spelling sum = %d, want 10", got)
	}

	// The doubled-quote escape stays inside the literal: a '' is a quote
	// character, not a close-and-reopen that would expose the interior.
	if got := normalizeQuery("select sum(v) from r where s = 'it''s  a  test'"); got != "select sum(v) from r where s = 'it''s  a  test'" {
		t.Errorf("escaped-quote literal was rewritten: %q", got)
	}
}

// TestFallbackNotCached checks statements outside the synthesizer's
// grammar (here: a non-aggregate projection) still fall back to the
// interpreter and are not inserted into the plan cache.
func TestFallbackNotCached(t *testing.T) {
	d := cacheTestDB(t, 1)
	defer d.Close()
	q := "select a, x from t where c < 3"
	_, ex, err := d.QuerySwole(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Technique != "interpreter-fallback" {
		t.Fatalf("expected fallback, got %s", ex.Technique)
	}
	if d.PlanCacheLen() != 0 {
		t.Errorf("fallback statement was cached")
	}
}
