package vec

// This file implements the "prepass" kernels (Crotty et al., Section II-A2):
// predicates are evaluated over a full tile into a comparison vector of 0/1
// bytes, removing the control dependency that prevents vectorization in the
// data-centric strategy.

// CmpOp identifies a comparison operator for the generic kernels.
type CmpOp int

// Comparison operators supported by the prepass kernels.
const (
	LT CmpOp = iota // less than
	LE              // less than or equal
	GT              // greater than
	GE              // greater than or equal
	EQ              // equal
	NE              // not equal
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "="
	case NE:
		return "<>"
	}
	return "?"
}

// CmpConst evaluates vals[i] op c for a tile, writing 0/1 into out.
// It dispatches once per tile, so the inner loops stay branch-free.
func CmpConst[T Number](op CmpOp, vals []T, c T, out []byte) {
	switch op {
	case LT:
		CmpConstLT(vals, c, out)
	case LE:
		CmpConstLE(vals, c, out)
	case GT:
		CmpConstGT(vals, c, out)
	case GE:
		CmpConstGE(vals, c, out)
	case EQ:
		CmpConstEQ(vals, c, out)
	case NE:
		CmpConstNE(vals, c, out)
	}
}

// CmpConstLT writes out[i] = (vals[i] < c).
func CmpConstLT[T Number](vals []T, c T, out []byte) {
	if len(vals) == 0 {
		return
	}
	_ = out[len(vals)-1]
	for i := range vals {
		out[i] = b2i(vals[i] < c)
	}
}

// CmpConstLE writes out[i] = (vals[i] <= c).
func CmpConstLE[T Number](vals []T, c T, out []byte) {
	if len(vals) == 0 {
		return
	}
	_ = out[len(vals)-1]
	for i := range vals {
		out[i] = b2i(vals[i] <= c)
	}
}

// CmpConstGT writes out[i] = (vals[i] > c).
func CmpConstGT[T Number](vals []T, c T, out []byte) {
	if len(vals) == 0 {
		return
	}
	_ = out[len(vals)-1]
	for i := range vals {
		out[i] = b2i(vals[i] > c)
	}
}

// CmpConstGE writes out[i] = (vals[i] >= c).
func CmpConstGE[T Number](vals []T, c T, out []byte) {
	if len(vals) == 0 {
		return
	}
	_ = out[len(vals)-1]
	for i := range vals {
		out[i] = b2i(vals[i] >= c)
	}
}

// CmpConstEQ writes out[i] = (vals[i] == c).
func CmpConstEQ[T Number](vals []T, c T, out []byte) {
	if len(vals) == 0 {
		return
	}
	_ = out[len(vals)-1]
	for i := range vals {
		out[i] = b2i(vals[i] == c)
	}
}

// CmpConstNE writes out[i] = (vals[i] != c).
func CmpConstNE[T Number](vals []T, c T, out []byte) {
	if len(vals) == 0 {
		return
	}
	_ = out[len(vals)-1]
	for i := range vals {
		out[i] = b2i(vals[i] != c)
	}
}

// CmpConstBetween writes out[i] = (lo <= vals[i] && vals[i] <= hi) without
// branching, used for range predicates such as TPC-H Q6's discount filter.
func CmpConstBetween[T Number](vals []T, lo, hi T, out []byte) {
	if len(vals) == 0 {
		return
	}
	_ = out[len(vals)-1]
	for i := range vals {
		out[i] = b2i(vals[i] >= lo) & b2i(vals[i] <= hi)
	}
}

// CmpCols writes out[i] = (a[i] op b[i]) for two columns, used by predicates
// such as TPC-H Q4's l_commitdate < l_receiptdate.
func CmpCols[T Number](op CmpOp, a, b []T, out []byte) {
	n := len(a)
	if n == 0 {
		return
	}
	_ = b[n-1]
	_ = out[n-1]
	switch op {
	case LT:
		for i := 0; i < n; i++ {
			out[i] = b2i(a[i] < b[i])
		}
	case LE:
		for i := 0; i < n; i++ {
			out[i] = b2i(a[i] <= b[i])
		}
	case GT:
		for i := 0; i < n; i++ {
			out[i] = b2i(a[i] > b[i])
		}
	case GE:
		for i := 0; i < n; i++ {
			out[i] = b2i(a[i] >= b[i])
		}
	case EQ:
		for i := 0; i < n; i++ {
			out[i] = b2i(a[i] == b[i])
		}
	case NE:
		for i := 0; i < n; i++ {
			out[i] = b2i(a[i] != b[i])
		}
	}
}

// And combines a second predicate's results into dst: dst[i] &= src[i].
// Conjunctions in the prepass are chained this way (paper Fig. 7 queries all
// carry a conjunct "and r_y = 1").
func And(dst, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] &= src[i]
	}
}

// Or combines a second predicate's results into dst: dst[i] |= src[i].
// Disjunctions such as TPC-H Q19's three-way OR use this kernel.
func Or(dst, src []byte) {
	if len(dst) == 0 {
		return
	}
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] |= src[i]
	}
}

// Not inverts a comparison vector in place. Eager aggregation inverts the
// build-side predicate to delete non-qualifying keys (paper Section III-E).
func Not(dst []byte) {
	for i := range dst {
		dst[i] ^= 1
	}
}

// Fill sets every lane of dst to v. A missing predicate is an all-ones
// comparison vector.
func Fill(dst []byte, v byte) {
	for i := range dst {
		dst[i] = v
	}
}

// CountOnes returns the number of set lanes in a comparison vector; it is
// the tile-local selectivity numerator.
func CountOnes(cmp []byte) int {
	n := 0
	for _, v := range cmp {
		n += int(v)
	}
	return n
}
