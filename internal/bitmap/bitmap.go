// Package bitmap implements the positional bitmaps of SWOLE's Section
// III-D. A positional bitmap records, for each build-side tuple *position*,
// whether the tuple qualifies; the probe side then checks membership with a
// positional lookup through the foreign-key index instead of probing a hash
// table. Because bit i corresponds to row i, a 100M-row table needs only
// ~12.5 MB, which stays cache-resident on the hardware classes the paper
// targets.
//
// Construction offers both variants the paper's cost model chooses between:
// unconditional predicated stores of the predicate result (a pure
// sequential write, SetFromCmp) and selection-vector driven stores
// (SetFromSel). The package also provides the word-level helpers and the
// block compression sketch the paper mentions (replacing entire blocks of
// repeated values).
package bitmap

import "math/bits"

// Bitmap is a fixed-length positional bitmap over row offsets [0, Len).
type Bitmap struct {
	words []uint64
	n     int
}

// New returns a bitmap covering n positions, all unset.
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of positions the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Bytes returns the in-memory size of the bit array, used by the cost model
// for cache-class placement.
func (b *Bitmap) Bytes() int { return len(b.words) * 8 }

// Set sets bit i to 1.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// SetTo writes v (0 or 1) to bit i unconditionally — the predicated store
// used when the value-masking cost model favours a pure sequential pass.
func (b *Bitmap) SetTo(i int, v byte) {
	w := &b.words[i>>6]
	bit := uint64(1) << (uint(i) & 63)
	*w = (*w &^ bit) | (uint64(v) << (uint(i) & 63))
}

// OrBit ORs v (0 or 1) into bit i without branching — the accumulation
// used when several build tuples map to the same probe position, as in
// semijoins against a many-to-one foreign key (TPC-H Q4: many lineitems
// set the bit of one order).
func (b *Bitmap) OrBit(i int, v byte) {
	b.words[i>>6] |= uint64(v) << (uint(i) & 63)
}

// Test reports whether bit i is set.
func (b *Bitmap) Test(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// TestBit returns bit i as 0 or 1, for branch-free masked aggregation on
// the probe side.
func (b *Bitmap) TestBit(i int) byte {
	return byte(b.words[i>>6] >> (uint(i) & 63) & 1)
}

// SetFromCmp writes a tile of predicate results into positions
// [base, base+len(cmp)). Every lane is stored unconditionally, so the write
// pattern is strictly sequential regardless of selectivity. Arbitrary base
// alignment is handled.
func (b *Bitmap) SetFromCmp(base int, cmp []byte) {
	for j, v := range cmp {
		b.SetTo(base+j, v)
	}
}

// OrFromCmp ORs a tile of predicate results into positions
// [base, base+len(cmp)) — the accumulation step of term-at-a-time
// disjunction evaluation, where each OR term contributes its accepted
// positions without disturbing bits earlier terms set.
func (b *Bitmap) OrFromCmp(base int, cmp []byte) {
	for j, v := range cmp {
		b.OrBit(base+j, v)
	}
}

// RangeAllSet reports whether every bit in [base, base+n) is set — the
// tile-level short circuit of term-at-a-time disjunction evaluation: once
// earlier terms accepted an entire tile, later terms skip it.
func (b *Bitmap) RangeAllSet(base, n int) bool {
	for i := base; i < base+n; {
		w := b.words[i>>6]
		lo := uint(i) & 63
		span := 64 - int(lo)
		if rem := base + n - i; span > rem {
			span = rem
		}
		mask := (^uint64(0) >> (64 - uint(span))) << lo
		if w&mask != mask {
			return false
		}
		i += span
	}
	return true
}

// ReadCmp materializes bits [base, base+len(cmp)) as a 0/1 byte mask — the
// consumer side of a positional bitmap feeding a tiled kernel.
func (b *Bitmap) ReadCmp(base int, cmp []byte) {
	for j := range cmp {
		cmp[j] = b.TestBit(base + j)
	}
}

// SetFromSel sets bits for the first n entries of a tile-local selection
// vector offset by base — the pushdown-style construction the cost model
// picks at very low selectivities.
func (b *Bitmap) SetFromSel(base int, sel []int32, n int) {
	for j := 0; j < n; j++ {
		b.Set(base + int(sel[j]))
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects other into b. Both bitmaps must cover the same length.
// TPC-H Q19 resolves its disjunctive join condition to a union of
// semijoins over per-branch bitmaps; And/Or compose such bitmaps.
func (b *Bitmap) And(other *Bitmap) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or unions other into b.
func (b *Bitmap) Or(other *Bitmap) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// MergeOr returns the union of the given bitmaps, which must all cover the
// same length — the merge phase of morsel-parallel bitmap construction:
// each worker sets bits for the build-side morsels it claimed in a private
// bitmap, and the partials are OR-ed once all workers finish. Every
// position is written by exactly one worker (morsels partition the build
// range), so the union is identical to a sequential construction.
func MergeOr(parts ...*Bitmap) *Bitmap {
	out := New(parts[0].n)
	for _, p := range parts {
		out.Or(p)
	}
	return out
}

// Clear unsets every bit.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Reset re-dimensions the bitmap to cover n positions with every bit
// unset, reusing the existing word array whenever its capacity allows —
// the pooled-reuse entry point: a recycled bitmap Reset to the same build
// side performs no allocation, only a sequential clear.
func (b *Bitmap) Reset(n int) {
	words := (n + 63) / 64
	if cap(b.words) < words {
		b.words = make([]uint64, words)
	} else {
		b.words = b.words[:words]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// OrInto unions parts into b (which must cover the same length), the
// allocation-free form of MergeOr for recycled merge targets.
func (b *Bitmap) OrInto(parts ...*Bitmap) {
	for _, p := range parts {
		b.Or(p)
	}
}
