package vec

import "math"

// Masked min/max kernels. Section III-A notes that aggregation functions
// other than sum "may require minor additional bookkeeping" under value
// masking: a masked lane cannot contribute 0 (0 may win a min/max), so
// masked lanes are arithmetically replaced by the aggregate's identity
// element (+inf for min, -inf for max) with a branch-free select.

// MinIdentity is the value masked lanes assume in MinMasked.
const MinIdentity = int64(math.MaxInt64)

// MaxIdentity is the value masked lanes assume in MaxMasked.
const MaxIdentity = int64(math.MinInt64)

// MinMasked returns the minimum of vals[i] over lanes with cmp[i] == 1,
// or MinIdentity if no lane qualifies. The loop is branch-free: masked
// lanes are replaced by the identity via conditional move, preserving the
// sequential access pattern of value masking.
func MinMasked[T Number](vals []T, cmp []byte) int64 {
	_ = cmp[len(vals)-1]
	best := MinIdentity
	for i := range vals {
		v := int64(vals[i])
		if cmp[i] == 0 {
			v = MinIdentity
		}
		if v < best {
			best = v
		}
	}
	return best
}

// MaxMasked returns the maximum of vals[i] over lanes with cmp[i] == 1,
// or MaxIdentity if no lane qualifies.
func MaxMasked[T Number](vals []T, cmp []byte) int64 {
	_ = cmp[len(vals)-1]
	best := MaxIdentity
	for i := range vals {
		v := int64(vals[i])
		if cmp[i] == 0 {
			v = MaxIdentity
		}
		if v > best {
			best = v
		}
	}
	return best
}

// MinSel and MaxSel are the selection-vector counterparts (the hybrid
// strategy's conditional-read form).

// MinSel returns the minimum of vals over the first n selected indexes.
func MinSel[T Number](vals []T, sel []int32, n int) int64 {
	best := MinIdentity
	for j := 0; j < n; j++ {
		if v := int64(vals[sel[j]]); v < best {
			best = v
		}
	}
	return best
}

// MaxSel returns the maximum of vals over the first n selected indexes.
func MaxSel[T Number](vals []T, sel []int32, n int) int64 {
	best := MaxIdentity
	for j := 0; j < n; j++ {
		if v := int64(vals[sel[j]]); v > best {
			best = v
		}
	}
	return best
}
