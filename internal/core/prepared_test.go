package core

import (
	"testing"

	"github.com/reprolab/swole/internal/expr"
)

// TestPreparedScalarAggParity checks a prepared scalar aggregation returns
// the one-shot engine's answers run after run, at one worker and several.
func TestPreparedScalarAggParity(t *testing.T) {
	db := testDB(t, 50_000, 100, 10)
	for _, workers := range []int{1, 4} {
		e := NewEngine(db)
		e.Workers = workers
		e.MorselRows = 4096
		defer e.Close()
		for _, sel := range []int64{1, 30, 95} {
			q := ScalarAgg{Table: "r", Filter: lt("r_x", sel), Agg: expr.NewCol("r_a")}
			want, wantEx, err := e.ScalarAgg(q)
			if err != nil {
				t.Fatal(err)
			}
			p, err := e.PrepareScalarAgg(q)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				got, ex := p.Run()
				if got != want {
					t.Errorf("workers=%d sel=%d rep=%d: got %d, want %d", workers, sel, rep, got, want)
				}
				if ex.Technique != wantEx.Technique {
					t.Errorf("workers=%d sel=%d: prepared technique %s, one-shot %s", workers, sel, ex.Technique, wantEx.Technique)
				}
				if !ex.PlanCached {
					t.Error("prepared Explain should report PlanCached")
				}
			}
		}
	}
}

// TestPreparedGroupAggParity checks the prepared group-by aggregation
// against the one-shot map result, across techniques and worker counts.
func TestPreparedGroupAggParity(t *testing.T) {
	for _, ccard := range []int{10, 3000} {
		db := testDB(t, 50_000, 100, ccard)
		for _, workers := range []int{1, 4} {
			e := NewEngine(db)
			e.Workers = workers
			e.MorselRows = 4096
			defer e.Close()
			for _, sel := range []int64{5, 60} {
				q := GroupAgg{Table: "r", Filter: lt("r_x", sel), Key: expr.NewCol("r_c"), Agg: expr.NewCol("r_a")}
				want, wantEx, err := e.GroupAgg(q)
				if err != nil {
					t.Fatal(err)
				}
				p, err := e.PrepareGroupAgg(q)
				if err != nil {
					t.Fatal(err)
				}
				for rep := 0; rep < 3; rep++ {
					res, ex := p.Run()
					if ex.Technique != wantEx.Technique {
						t.Errorf("ccard=%d workers=%d sel=%d: technique %s, one-shot %s", ccard, workers, sel, ex.Technique, wantEx.Technique)
					}
					if res.Len() != len(want) {
						t.Fatalf("ccard=%d workers=%d sel=%d rep=%d: %d groups, want %d", ccard, workers, sel, rep, res.Len(), len(want))
					}
					for i := 0; i < res.Len(); i++ {
						k := res.Key(i)
						if i > 0 && res.Key(i-1) >= k {
							t.Fatalf("keys not strictly ascending at %d", i)
						}
						if res.Sum(i) != want[k] {
							t.Errorf("ccard=%d workers=%d sel=%d key=%d: sum %d, want %d", ccard, workers, sel, k, res.Sum(i), want[k])
						}
					}
				}
			}
		}
	}
}

// TestPreparedSemiJoinAggParity checks the prepared semijoin at both build
// variants (selective and unselective build predicate).
func TestPreparedSemiJoinAggParity(t *testing.T) {
	db := testDB(t, 50_000, 1000, 10)
	for _, workers := range []int{1, 4} {
		e := NewEngine(db)
		e.Workers = workers
		e.MorselRows = 4096
		defer e.Close()
		for _, buildSel := range []int64{2, 60} {
			q := SemiJoinAgg{
				Probe: "r", Build: "s", FK: "r_fk", PK: "s_pk",
				ProbeFilter: lt("r_x", 50), BuildFilter: lt("s_x", buildSel),
				Agg: expr.NewCol("r_a"),
			}
			want, _, err := e.SemiJoinAgg(q)
			if err != nil {
				t.Fatal(err)
			}
			p, err := e.PrepareSemiJoinAgg(q)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				got, _ := p.Run()
				if got != want {
					t.Errorf("workers=%d buildSel=%d rep=%d: got %d, want %d", workers, buildSel, rep, got, want)
				}
			}
		}
	}
}

// TestPreparedGroupJoinAggParity checks the prepared groupjoin on both the
// eager and traditional paths against the one-shot result.
func TestPreparedGroupJoinAggParity(t *testing.T) {
	db := testDB(t, 50_000, 1000, 10)
	for _, workers := range []int{1, 4} {
		for _, buildSel := range []int64{2, 95} {
			e := NewEngine(db)
			e.Workers = workers
			e.MorselRows = 4096
			defer e.Close()
			q := GroupJoinAgg{
				Probe: "r", Build: "s", FK: "r_fk", PK: "s_pk",
				BuildFilter: lt("s_x", buildSel), Agg: expr.NewCol("r_a"),
			}
			want, wantEx, err := e.GroupJoinAgg(q)
			if err != nil {
				t.Fatal(err)
			}
			p, err := e.PrepareGroupJoinAgg(q)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				res, ex := p.Run()
				if ex.Technique != wantEx.Technique {
					t.Errorf("workers=%d buildSel=%d: technique %s, one-shot %s", workers, buildSel, ex.Technique, wantEx.Technique)
				}
				if res.Len() != len(want) {
					t.Fatalf("workers=%d buildSel=%d rep=%d: %d groups, want %d", workers, buildSel, rep, res.Len(), len(want))
				}
				for i := 0; i < res.Len(); i++ {
					k := res.Key(i)
					if res.Sum(i) != want[k] {
						t.Errorf("workers=%d buildSel=%d key=%d: sum %d, want %d", workers, buildSel, k, res.Sum(i), want[k])
					}
				}
			}
		}
	}
}

// TestPreparedZeroAlloc is the tentpole gate: the second and later runs of
// a prepared scalar aggregation, group aggregation, and semijoin must not
// allocate, at one worker and at four.
func TestPreparedZeroAlloc(t *testing.T) {
	db := testDB(t, 64_000, 1000, 100)
	for _, workers := range []int{1, 4} {
		e := NewEngine(db)
		e.Workers = workers
		e.MorselRows = 4096
		defer e.Close()

		scalar, err := e.PrepareScalarAgg(ScalarAgg{Table: "r", Filter: lt("r_x", 50), Agg: expr.NewCol("r_a")})
		if err != nil {
			t.Fatal(err)
		}
		group, err := e.PrepareGroupAgg(GroupAgg{Table: "r", Filter: lt("r_x", 50), Key: expr.NewCol("r_c"), Agg: expr.NewCol("r_a")})
		if err != nil {
			t.Fatal(err)
		}
		semi, err := e.PrepareSemiJoinAgg(SemiJoinAgg{
			Probe: "r", Build: "s", FK: "r_fk", PK: "s_pk",
			ProbeFilter: lt("r_x", 50), BuildFilter: lt("s_x", 50),
			Agg: expr.NewCol("r_a"),
		})
		if err != nil {
			t.Fatal(err)
		}

		// Warm run: evaluator scratch, result arrays, any under-estimated
		// hash capacity, and gang goroutine stacks all settle here.
		scalar.Run()
		group.Run()
		semi.Run()

		if allocs := testing.AllocsPerRun(20, func() { scalar.Run() }); allocs != 0 {
			t.Errorf("workers=%d: scalar Run allocates %.1f per run, want 0", workers, allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() { group.Run() }); allocs != 0 {
			t.Errorf("workers=%d: group Run allocates %.1f per run, want 0", workers, allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() { semi.Run() }); allocs != 0 {
			t.Errorf("workers=%d: semijoin Run allocates %.1f per run, want 0", workers, allocs)
		}

		if _, ex := group.Run(); ex.HTGrows != 0 {
			t.Errorf("workers=%d: steady-state group run grew its hash tables %d times", workers, ex.HTGrows)
		}
	}
}

// TestOneShotZeroAlloc is the one-shot side of the gate: a replayed
// one-shot execution goes through the same compiled plan as a prepared
// re-run, so the scalar and semijoin entry points (whose results are plain
// int64s) must not allocate either. The group-shape one-shot APIs return a
// freshly allocated map by contract; their replay guarantee is asserted
// through the Explain counters instead.
func TestOneShotZeroAlloc(t *testing.T) {
	db := testDB(t, 64_000, 1000, 100)
	for _, workers := range []int{1, 4} {
		e := NewEngine(db)
		e.Workers = workers
		e.MorselRows = 4096
		defer e.Close()

		sq := ScalarAgg{Table: "r", Filter: lt("r_x", 50), Agg: expr.NewCol("r_a")}
		gq := GroupAgg{Table: "r", Filter: lt("r_x", 50), Key: expr.NewCol("r_c"), Agg: expr.NewCol("r_a")}
		mq := SemiJoinAgg{
			Probe: "r", Build: "s", FK: "r_fk", PK: "s_pk",
			ProbeFilter: lt("r_x", 50), BuildFilter: lt("s_x", 50),
			Agg: expr.NewCol("r_a"),
		}
		// Cold runs compile and cache the plans; the second run settles
		// any lazily sized scratch.
		for rep := 0; rep < 2; rep++ {
			if _, _, err := e.ScalarAgg(sq); err != nil {
				t.Fatal(err)
			}
			if _, _, err := e.GroupAgg(gq); err != nil {
				t.Fatal(err)
			}
			if _, _, err := e.SemiJoinAgg(mq); err != nil {
				t.Fatal(err)
			}
		}

		if allocs := testing.AllocsPerRun(20, func() { e.ScalarAgg(sq) }); allocs != 0 {
			t.Errorf("workers=%d: one-shot scalar replay allocates %.1f per run, want 0", workers, allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() { e.SemiJoinAgg(mq) }); allocs != 0 {
			t.Errorf("workers=%d: one-shot semijoin replay allocates %.1f per run, want 0", workers, allocs)
		}
		if _, ex, err := e.GroupAgg(gq); err != nil {
			t.Fatal(err)
		} else if ex.FreshAllocs != 0 || ex.HTGrows != 0 {
			t.Errorf("workers=%d: one-shot group replay FreshAllocs=%d HTGrows=%d, want 0/0",
				workers, ex.FreshAllocs, ex.HTGrows)
		}
	}
}

// TestStatsCacheHits checks the second planning of a shape reports cached
// statistics and that invalidation brings sampling back.
func TestStatsCacheHits(t *testing.T) {
	db := testDB(t, 30_000, 100, 10)
	e := NewEngine(db)
	defer e.Close()
	q := GroupAgg{Table: "r", Filter: lt("r_x", 30), Key: expr.NewCol("r_c"), Agg: expr.NewCol("r_a")}
	if _, ex, err := e.GroupAgg(q); err != nil || ex.StatsCached {
		t.Fatalf("first run: err=%v StatsCached=%v, want miss", err, ex.StatsCached)
	}
	if _, ex, err := e.GroupAgg(q); err != nil || !ex.StatsCached {
		t.Fatalf("second run: err=%v StatsCached=%v, want hit", err, ex.StatsCached)
	}
	if e.StatsCacheLen() == 0 {
		t.Fatal("stats cache empty after two runs")
	}
	e.InvalidateStats("r")
	if e.StatsCacheLen() != 0 {
		t.Fatalf("stats cache holds %d entries after invalidation", e.StatsCacheLen())
	}
	if _, ex, err := e.GroupAgg(q); err != nil || ex.StatsCached {
		t.Fatalf("post-invalidation run: err=%v StatsCached=%v, want miss", err, ex.StatsCached)
	}
}

// TestStatsCacheVersioned checks that replacing a table makes its cached
// statistics unreachable even without explicit invalidation.
func TestStatsCacheVersioned(t *testing.T) {
	db := testDB(t, 30_000, 100, 10)
	e := NewEngine(db)
	defer e.Close()
	q := ScalarAgg{Table: "r", Filter: lt("r_x", 30), Agg: expr.NewCol("r_a")}
	if _, _, err := e.ScalarAgg(q); err != nil {
		t.Fatal(err)
	}
	if _, ex, _ := e.ScalarAgg(q); !ex.StatsCached {
		t.Fatal("want stats hit before table replacement")
	}
	// Re-register r (same contents, new version): the old entry's version
	// no longer matches, so the next plan samples afresh.
	db.AddTable(db.MustTable("r"))
	if _, ex, _ := e.ScalarAgg(q); ex.StatsCached {
		t.Fatal("stats reported cached across a table replacement")
	}
}

// TestPoolRecycling checks FreshAllocs drops to zero once the engine pools
// are warm, and that HTGrows stays zero when the cardinality hint holds.
func TestPoolRecycling(t *testing.T) {
	db := testDB(t, 30_000, 100, 1000)
	e := NewEngine(db)
	e.Workers = 2
	defer e.Close()
	q := GroupAgg{Table: "r", Key: expr.NewCol("r_c"), Agg: expr.NewCol("r_a")}
	_, ex, err := e.GroupAgg(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.FreshAllocs == 0 {
		t.Fatal("first run should report fresh resource allocations")
	}
	for rep := 0; rep < 3; rep++ {
		_, ex, err = e.GroupAgg(q)
		if err != nil {
			t.Fatal(err)
		}
		if ex.FreshAllocs != 0 {
			t.Errorf("rep %d: %d fresh allocations on a warm pool", rep, ex.FreshAllocs)
		}
		if ex.HTGrows != 0 {
			t.Errorf("rep %d: %d hash growths despite cardinality hint", rep, ex.HTGrows)
		}
	}
}
