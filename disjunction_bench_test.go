package swole

import (
	"math/rand"
	"testing"

	"github.com/reprolab/swole/internal/bitmap"
	"github.com/reprolab/swole/internal/expr"
	"github.com/reprolab/swole/internal/storage"
	"github.com/reprolab/swole/internal/vec"
)

// Disjunction evaluation benchmarks (DESIGN.md §13): the two compiled
// strategies the synthesizer's cost model chooses between for an OR tree
// — fused branchless tile evaluation and term-at-a-time positional
// bitmaps — against the naive row-at-a-time interpreted loop. The corpus
// is a three-term OR at ~10% combined selectivity (each term ~3.5%),
// the regime the issue's CI gate pins: bitmap-OR must beat the naive
// row loop by at least 1.3x (see the disjunction-bench job).

const disjRows = 1 << 20

// disjFixture is the shared benchmark input: three uniform int columns
// and the three-term disjunction over them.
type disjFixture struct {
	tab     *storage.Table
	orTree  expr.Expr // bound columnar (EvalBool)
	rowTree expr.Expr // bound row-wise (EvalRow)
	want    int       // matching rows, for cross-checking the variants
}

// disjRowSchema resolves the column names to positions in the widened
// row buffer the naive loop carries.
type disjRowSchema struct{}

func (disjRowSchema) Resolve(name string) (int, *storage.Dict, bool) {
	switch name {
	case "a":
		return 0, nil, true
	case "b":
		return 1, nil, true
	case "c":
		return 2, nil, true
	}
	return 0, nil, false
}

func newDisjFixture(tb testing.TB) *disjFixture {
	tb.Helper()
	r := rand.New(rand.NewSource(99))
	mk := func(name string) *storage.Column {
		v := make([]int64, disjRows)
		for i := range v {
			v[i] = r.Int63n(1000)
		}
		return storage.NewInt64(name, v, storage.LogInt)
	}
	f := &disjFixture{tab: storage.MustNewTable("t", mk("a"), mk("b"), mk("c"))}
	// Each term passes ~3.5% of rows; the union is ~10%.
	tree := func() expr.Expr {
		return &expr.Logic{Op: expr.Or, Args: []expr.Expr{
			&expr.Cmp{Op: expr.LT, L: expr.NewCol("a"), R: &expr.Const{Val: 35}},
			&expr.Cmp{Op: expr.LT, L: expr.NewCol("b"), R: &expr.Const{Val: 35}},
			&expr.Cmp{Op: expr.LT, L: expr.NewCol("c"), R: &expr.Const{Val: 35}},
		}}
	}
	f.orTree = tree()
	if err := expr.Bind(f.orTree, f.tab); err != nil {
		tb.Fatal(err)
	}
	f.rowTree = tree()
	if err := expr.BindRow(f.rowTree, disjRowSchema{}); err != nil {
		tb.Fatal(err)
	}
	f.want = f.countRowNaive()
	return f
}

// countRowNaive is the interpreted baseline: widen each row into a
// buffer and evaluate the OR tree tuple at a time, short-circuiting on
// the first accepting term — exactly what a volcano-style filter does.
func (f *disjFixture) countRowNaive() int {
	a, b, c := f.tab.Columns[0], f.tab.Columns[1], f.tab.Columns[2]
	row := make([]int64, 3)
	count := 0
	for i := 0; i < disjRows; i++ {
		row[0], row[1], row[2] = a.Get(i), b.Get(i), c.Get(i)
		if expr.EvalRow(f.rowTree, row) != 0 {
			count++
		}
	}
	return count
}

// countFused evaluates the whole OR tree per tile with branchless
// byte-mask combination (cost.DisjFused).
func (f *disjFixture) countFused(ev *expr.Evaluator, cmp []byte) int {
	count := 0
	for base := 0; base < disjRows; base += vec.TileSize {
		n := disjRows - base
		if n > vec.TileSize {
			n = vec.TileSize
		}
		ev.EvalBool(f.orTree, base, n, cmp[:n])
		for _, v := range cmp[:n] {
			count += int(v)
		}
	}
	return count
}

// countBitmapOR evaluates term at a time into a positional bitmap
// (cost.DisjBitmap): each term ORs its tile verdicts into the bitmap,
// and later terms skip tiles earlier terms already saturated.
func (f *disjFixture) countBitmapOR(ev *expr.Evaluator, bm *bitmap.Bitmap, cmp []byte) int {
	bm.Reset(disjRows)
	terms := f.orTree.(*expr.Logic).Args
	for ti, term := range terms {
		for base := 0; base < disjRows; base += vec.TileSize {
			n := disjRows - base
			if n > vec.TileSize {
				n = vec.TileSize
			}
			if ti > 0 && bm.RangeAllSet(base, n) {
				continue
			}
			ev.EvalBool(term, base, n, cmp[:n])
			bm.OrFromCmp(base, cmp[:n])
		}
	}
	return bm.Count()
}

// BenchmarkDisjunctionRowNaive is the interpreted tuple-at-a-time
// baseline the CI gate measures the compiled strategies against.
func BenchmarkDisjunctionRowNaive(b *testing.B) {
	f := newDisjFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.countRowNaive(); got != f.want {
			b.Fatalf("row-naive count %d, want %d", got, f.want)
		}
	}
}

// BenchmarkDisjunctionFused is the branchless all-terms-every-tuple
// compiled strategy.
func BenchmarkDisjunctionFused(b *testing.B) {
	f := newDisjFixture(b)
	ev := expr.NewEvaluator()
	cmp := make([]byte, vec.TileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.countFused(ev, cmp); got != f.want {
			b.Fatalf("fused count %d, want %d", got, f.want)
		}
	}
}

// BenchmarkDisjunctionBitmapOR is the term-at-a-time positional-bitmap
// compiled strategy; the CI gate pins it at >=1.3x over the row-naive
// baseline at this corpus's ~10% selectivity.
func BenchmarkDisjunctionBitmapOR(b *testing.B) {
	f := newDisjFixture(b)
	ev := expr.NewEvaluator()
	bm := bitmap.New(disjRows)
	cmp := make([]byte, vec.TileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.countBitmapOR(ev, bm, cmp); got != f.want {
			b.Fatalf("bitmap-OR count %d, want %d", got, f.want)
		}
	}
}
