// Command swoled serves SWOLE queries over HTTP.
//
// It loads a built-in dataset (the Figure 7 microbenchmark by default, or
// TPC-H with -tpch), then serves:
//
//	POST /query    {"query": "...", "timeout_ms": 100}  → columns, rows, explain
//	POST /ingest?table=r[&policy=skip]  (CSV body)      → rows accepted/rejected
//	GET  /explain?q=...                                 → explain only
//	GET  /metrics                                       → Prometheus text format
//	GET  /healthz                                       → ok / draining
//
// Queries are admission-controlled: -max-inflight execute concurrently,
// -max-queue wait, the rest get 429. Every query runs under -timeout
// unless the request carries its own timeout_ms. SIGINT/SIGTERM drains
// gracefully: in-flight queries finish (up to -drain), then the process
// exits 0.
//
// /ingest appends one CSV batch through the table's compiled ingestion
// kernel (fields line up positionally with the table's columns); appended
// rows are visible to the next /query. Batches share the query admission
// slots, and /metrics adds swole_ingest_queries_total{outcome},
// swole_ingest_rows_total, and swole_ingest_duration_seconds. Coordinator
// mode has no local data and answers /ingest with 501.
//
// Two scaling modes ride on top (see README "Scaling out"):
//
//	-table-shards K   splits the microbenchmark fact table into K
//	                  in-process row-range shards, each scanning on its
//	                  own engine (negative K asks the cost model)
//	-shards a,b,...   coordinator mode: no local data — every query
//	                  scatter-gathers over the listed shard processes
//	                  (each an ordinary swoled serving one row range)
//	                  and merges the partials; a shard 429 or timeout
//	                  fails the query with per-shard attribution in the
//	                  explain. -per-shard bounds outstanding requests
//	                  per shard. The /metrics page adds
//	                  swole_shard_queries_total{shard}.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	swole "github.com/reprolab/swole"
	"github.com/reprolab/swole/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInflight = flag.Int("max-inflight", 4, "queries executing concurrently")
		maxQueue    = flag.Int("max-queue", 16, "queries waiting for admission (beyond this: HTTP 429)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query deadline (0 = none)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight queries")

		tpch   = flag.Float64("tpch", 0, "load TPC-H at this scale factor instead of the microbenchmark")
		rows   = flag.Int("rows", 1_000_000, "microbenchmark fact-table rows")
		dim    = flag.Int("dim", 1_000, "microbenchmark dimension-table rows")
		groups = flag.Int("groups", 1_000, "microbenchmark group-key cardinality")

		workers   = flag.Int("workers", 0, "morsel worker count per query (0 = GOMAXPROCS)")
		partition = flag.String("partition", "auto", "radix partitioning mode: auto, on, or off")

		tableShards = flag.Int("table-shards", 0, "split the microbenchmark fact table into this many in-process shards (negative = cost model decides)")
		shards      = flag.String("shards", "", "coordinator mode: comma-separated shard addresses (host:port); no local data is loaded")
		perShard    = flag.Int("per-shard", 4, "coordinator mode: outstanding requests per shard")
	)
	flag.Parse()

	var pmode swole.PartitionMode
	switch *partition {
	case "auto":
		pmode = swole.PartitionAuto
	case "on":
		pmode = swole.PartitionOn
	case "off":
		pmode = swole.PartitionOff
	default:
		log.Fatalf("bad -partition %q: want auto, on, or off", *partition)
	}

	dt := *timeout
	if dt == 0 {
		dt = -1 // Config treats 0 as "use default"; flag 0 means no deadline
	}
	scfg := serve.Config{
		Addr:           *addr,
		MaxInFlight:    *maxInflight,
		MaxQueue:       *maxQueue,
		DefaultTimeout: dt,
		DrainTimeout:   *drain,
	}

	var (
		db  *swole.DB
		srv *serve.Server
		err error
	)
	if *shards != "" {
		addrs := strings.Split(*shards, ",")
		srv, err = serve.NewCoordinator(serve.CoordinatorConfig{
			Config:   scfg,
			Shards:   addrs,
			PerShard: *perShard,
		})
		if err != nil {
			log.Fatalf("coordinator: %v", err)
		}
		if err := srv.Start(); err != nil {
			log.Fatalf("listen: %v", err)
		}
		log.Printf("swoled coordinating %d shards on %s (per-shard=%d max-inflight=%d max-queue=%d timeout=%v)",
			len(addrs), srv.Addr(), *perShard, *maxInflight, *maxQueue, *timeout)
	} else {
		start := time.Now()
		if *tpch > 0 {
			log.Printf("loading TPC-H sf=%g ...", *tpch)
			db = swole.LoadTPCH(*tpch)
		} else {
			log.Printf("loading microbenchmark (rows=%d dim=%d groups=%d shards=%d) ...", *rows, *dim, *groups, *tableShards)
			db, err = swole.LoadMicro(swole.MicroConfig{Rows: *rows, DimRows: *dim, GroupKeys: *groups, Shards: *tableShards})
			if err != nil {
				log.Fatalf("load dataset: %v", err)
			}
		}
		log.Printf("dataset ready in %v", time.Since(start).Round(time.Millisecond))
		db.SetWorkers(*workers)
		db.SetPartitionMode(pmode)

		srv = serve.New(db, scfg)
		if err := srv.Start(); err != nil {
			log.Fatalf("listen: %v", err)
		}
		log.Printf("swoled serving on %s (max-inflight=%d max-queue=%d timeout=%v)",
			srv.Addr(), *maxInflight, *maxQueue, *timeout)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("signal received, draining (budget %v) ...", *drain)
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if db != nil {
		db.Close()
	}
	fmt.Println("swoled: drained, bye")
}
