package expr

import (
	"github.com/reprolab/swole/internal/vec"
)

// Eval evaluates a bound expression for a single row, the tuple-at-a-time
// access path of the Volcano engine and the data-centric kernels. Booleans
// are 0/1.
func Eval(e Expr, row int) int64 {
	switch x := e.(type) {
	case *Col:
		return x.col.Get(row)
	case *Const:
		return x.Val
	case *StrConst:
		return x.Code()
	case *Arith:
		l, r := Eval(x.L, row), Eval(x.R, row)
		switch x.Op {
		case Add:
			return l + r
		case Sub:
			return l - r
		case Mul:
			return l * r
		default:
			return l / r
		}
	case *Cmp:
		l, r := Eval(x.L, row), Eval(x.R, row)
		var ok bool
		switch x.Op {
		case LT:
			ok = l < r
		case LE:
			ok = l <= r
		case GT:
			ok = l > r
		case GE:
			ok = l >= r
		case EQ:
			ok = l == r
		default:
			ok = l != r
		}
		if ok {
			return 1
		}
		return 0
	case *Between:
		v := Eval(x.X, row)
		if v >= Eval(x.Lo, row) && v <= Eval(x.Hi, row) {
			return 1
		}
		return 0
	case *In:
		v := Eval(x.X, row)
		for _, item := range x.List {
			if v == Eval(item, row) {
				return 1
			}
		}
		return 0
	case *Like:
		return int64(x.match[Eval(x.X, row)])
	case *Logic:
		switch x.Op {
		case And:
			for _, a := range x.Args {
				if Eval(a, row) == 0 {
					return 0
				}
			}
			return 1
		case Or:
			for _, a := range x.Args {
				if Eval(a, row) != 0 {
					return 1
				}
			}
			return 0
		default:
			if Eval(x.Args[0], row) == 0 {
				return 1
			}
			return 0
		}
	case *Case:
		for _, w := range x.Whens {
			if Eval(w.Cond, row) != 0 {
				return Eval(w.Then, row)
			}
		}
		if x.Else != nil {
			return Eval(x.Else, row)
		}
		return 0
	}
	panic("expr: cannot evaluate unknown node")
}

// Evaluator evaluates bound expressions a tile at a time, reusing scratch
// buffers across calls. It backs the generic hybrid/prepass execution paths
// and the vectorized parts of the Volcano engine.
type Evaluator struct {
	intScratch  [][]int64
	boolScratch [][]byte

	// ctr, when set, tallies which specialized kernel variant each tile
	// ran through (width-specialized cmp prepass, unrolled widen, dict
	// keys). Plans bind a per-worker counter block at bind() time.
	ctr *vec.Counters
}

// NewEvaluator returns an evaluator with empty scratch pools.
func NewEvaluator() *Evaluator { return &Evaluator{} }

// SetCounters directs per-tile variant tallies into ctr (nil disables
// counting). The counter block must outlive the evaluator's use.
func (ev *Evaluator) SetCounters(ctr *vec.Counters) { ev.ctr = ctr }

func (ev *Evaluator) getInt() []int64 {
	if n := len(ev.intScratch); n > 0 {
		s := ev.intScratch[n-1]
		ev.intScratch = ev.intScratch[:n-1]
		return s
	}
	return make([]int64, vec.TileSize)
}

func (ev *Evaluator) putInt(s []int64) { ev.intScratch = append(ev.intScratch, s) }

func (ev *Evaluator) getBool() []byte {
	if n := len(ev.boolScratch); n > 0 {
		s := ev.boolScratch[n-1]
		ev.boolScratch = ev.boolScratch[:n-1]
		return s
	}
	return make([]byte, vec.TileSize)
}

func (ev *Evaluator) putBool(s []byte) { ev.boolScratch = append(ev.boolScratch, s) }

// EvalBool evaluates a bound predicate over rows [base, base+n), writing
// 0/1 into out[:n] — the prepass loop of Figure 1.
func (ev *Evaluator) EvalBool(e Expr, base, n int, out []byte) {
	switch x := e.(type) {
	case *Cmp:
		// Width-specialized fast path: column vs literal compares at the
		// column's physical width, hoisting the Kind switch out of the
		// loop (control-flow duplication by hand).
		if col, c, op, ok := colConstCmp(x); ok {
			if col.col.CmpConstInto(op, c, base, n, out) {
				if ev.ctr != nil {
					ev.ctr.Cmp[int(col.col.Kind)]++
					if col.col.Dict != nil {
						ev.ctr.DictKeys++
					}
				}
				return
			}
		}
		l := ev.getInt()
		r := ev.getInt()
		ev.EvalInt(x.L, base, n, l)
		ev.EvalInt(x.R, base, n, r)
		vec.CmpCols(vec.CmpOp(x.Op), l[:n], r[:n], out)
		if ev.ctr != nil {
			ev.ctr.Cmp[3]++ // generic compare runs widened to int64
		}
		ev.putInt(l)
		ev.putInt(r)
	case *Between:
		if col, ok := x.X.(*Col); ok {
			if lo, okLo := constVal(x.Lo); okLo {
				if hi, okHi := constVal(x.Hi); okHi {
					if col.col.CmpBetweenInto(lo, hi, base, n, out) {
						if ev.ctr != nil {
							ev.ctr.Cmp[int(col.col.Kind)]++
						}
						return
					}
				}
			}
		}
		v := ev.getInt()
		lo := ev.getInt()
		hi := ev.getInt()
		ev.EvalInt(x.X, base, n, v)
		ev.EvalInt(x.Lo, base, n, lo)
		ev.EvalInt(x.Hi, base, n, hi)
		tmp := ev.getBool()
		vec.CmpCols(vec.GE, v[:n], lo[:n], out)
		vec.CmpCols(vec.LE, v[:n], hi[:n], tmp)
		vec.And(out[:n], tmp[:n])
		if ev.ctr != nil {
			ev.ctr.Cmp[3]++
		}
		ev.putBool(tmp)
		ev.putInt(v)
		ev.putInt(lo)
		ev.putInt(hi)
	case *In:
		v := ev.getInt()
		ev.EvalInt(x.X, base, n, v)
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		tmp := ev.getBool()
		for _, item := range x.List {
			c := evalConst(item)
			vec.CmpConstEQ(v[:n], c, tmp)
			vec.Or(out[:n], tmp[:n])
		}
		ev.putBool(tmp)
		ev.putInt(v)
	case *Like:
		v := ev.getInt()
		ev.EvalInt(x.X, base, n, v)
		for i := 0; i < n; i++ {
			out[i] = x.match[v[i]]
		}
		ev.putInt(v)
	case *Logic:
		switch x.Op {
		case And:
			ev.EvalBool(x.Args[0], base, n, out)
			tmp := ev.getBool()
			for _, a := range x.Args[1:] {
				ev.EvalBool(a, base, n, tmp)
				vec.And(out[:n], tmp[:n])
			}
			ev.putBool(tmp)
		case Or:
			ev.EvalBool(x.Args[0], base, n, out)
			tmp := ev.getBool()
			for _, a := range x.Args[1:] {
				ev.EvalBool(a, base, n, tmp)
				vec.Or(out[:n], tmp[:n])
			}
			ev.putBool(tmp)
		default:
			ev.EvalBool(x.Args[0], base, n, out)
			vec.Not(out[:n])
		}
	default:
		// Generic integer expression used as a predicate: nonzero is true.
		v := ev.getInt()
		ev.EvalInt(e, base, n, v)
		vec.CmpConstNE(v[:n], 0, out)
		ev.putInt(v)
	}
}

// EvalInt evaluates a bound integer expression over rows [base, base+n),
// writing into out[:n].
func (ev *Evaluator) EvalInt(e Expr, base, n int, out []int64) {
	switch x := e.(type) {
	case *Col:
		c := x.col
		c.WidenInto(base, n, out)
		if ev.ctr != nil {
			ev.ctr.Widen[int(c.Kind)]++
			if c.Dict != nil {
				ev.ctr.DictKeys++
			}
		}
	case *Const:
		for i := 0; i < n; i++ {
			out[i] = x.Val
		}
	case *StrConst:
		c := x.Code()
		for i := 0; i < n; i++ {
			out[i] = c
		}
	case *Arith:
		l := ev.getInt()
		ev.EvalInt(x.L, base, n, l)
		r := ev.getInt()
		ev.EvalInt(x.R, base, n, r)
		switch x.Op {
		case Add:
			for i := 0; i < n; i++ {
				out[i] = l[i] + r[i]
			}
		case Sub:
			for i := 0; i < n; i++ {
				out[i] = l[i] - r[i]
			}
		case Mul:
			for i := 0; i < n; i++ {
				out[i] = l[i] * r[i]
			}
		default:
			for i := 0; i < n; i++ {
				out[i] = l[i] / r[i]
			}
		}
		ev.putInt(l)
		ev.putInt(r)
	case *Case:
		// Unconditional evaluation of all arms with masking — the SWOLE
		// treatment of CASE from Section III-A. First-match-wins
		// semantics are preserved by masking each arm with "its condition
		// and no earlier condition".
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		taken := ev.getBool()
		for i := 0; i < n; i++ {
			taken[i] = 0
		}
		cond := ev.getBool()
		val := ev.getInt()
		for _, w := range x.Whens {
			ev.EvalBool(w.Cond, base, n, cond)
			ev.EvalInt(w.Then, base, n, val)
			for i := 0; i < n; i++ {
				m := int64(cond[i] &^ taken[i])
				out[i] += val[i] * m
				taken[i] |= cond[i]
			}
		}
		if x.Else != nil {
			ev.EvalInt(x.Else, base, n, val)
			for i := 0; i < n; i++ {
				out[i] += val[i] * int64(1-taken[i])
			}
		}
		ev.putInt(val)
		ev.putBool(cond)
		ev.putBool(taken)
	default:
		// Boolean nodes used as integers.
		b := ev.getBool()
		ev.EvalBool(e, base, n, b)
		for i := 0; i < n; i++ {
			out[i] = int64(b[i])
		}
		ev.putBool(b)
	}
}

func evalConst(e Expr) int64 {
	switch x := e.(type) {
	case *Const:
		return x.Val
	case *StrConst:
		return x.Code()
	}
	panic("expr: IN list items must be literals")
}

// constVal reports e's value if e is a literal.
func constVal(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *Const:
		return x.Val, true
	case *StrConst:
		return x.Code(), true
	}
	return 0, false
}

// colConstCmp matches a comparison of a bare column against a literal on
// either side, normalizing "literal op column" by flipping the operator.
func colConstCmp(x *Cmp) (*Col, int64, vec.CmpOp, bool) {
	if col, ok := x.L.(*Col); ok {
		if c, isConst := constVal(x.R); isConst {
			return col, c, vec.CmpOp(x.Op), true
		}
	}
	if col, ok := x.R.(*Col); ok {
		if c, isConst := constVal(x.L); isConst {
			return col, c, flipCmp(vec.CmpOp(x.Op)), true
		}
	}
	return nil, 0, 0, false
}

// flipCmp mirrors an operator across its operands: c op v ⇔ v flip(op) c.
func flipCmp(op vec.CmpOp) vec.CmpOp {
	switch op {
	case vec.LT:
		return vec.GT
	case vec.LE:
		return vec.GE
	case vec.GT:
		return vec.LT
	case vec.GE:
		return vec.LE
	}
	return op // EQ and NE are symmetric
}
