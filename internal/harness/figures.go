package harness

import (
	"fmt"
	"strings"
	"time"

	"github.com/reprolab/swole/internal/micro"
	"github.com/reprolab/swole/internal/tpch"
)

// Fig6 regenerates the paper's Figure 6: the eight TPC-H queries under the
// interpreted Volcano baseline (HyPer substitute), data-centric, hybrid,
// and SWOLE.
type Fig6Row struct {
	Query    tpch.Query
	Runtimes map[tpch.Strategy]time.Duration
}

// Fig6 runs the TPC-H experiment and returns one row per query.
func (cfg Config) Fig6() ([]Fig6Row, error) {
	d := tpch.Generate(cfg.SF)
	rows := make([]Fig6Row, 0, len(tpch.Queries))
	for _, q := range tpch.Queries {
		row := Fig6Row{Query: q, Runtimes: map[tpch.Strategy]time.Duration{}}
		for _, s := range tpch.Strategies {
			var err error
			row.Runtimes[s] = cfg.timeBest(func() int64 {
				res, e := d.Run(q, s)
				if e != nil {
					err = e
					return 0
				}
				var chk int64
				for _, r := range res {
					for _, v := range r {
						chk += v
					}
				}
				return chk
			})
			if err != nil {
				return nil, fmt.Errorf("harness: %s/%s: %w", q, s, err)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig6 renders the Figure 6 table with the paper's speedup columns.
func FormatFig6(rows []Fig6Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %12s %12s %12s %12s %10s %10s\n",
		"query", "volcano", "datacentric", "hybrid", "swole", "hy/dc", "sw/hy")
	for _, r := range rows {
		dc := r.Runtimes[tpch.DataCentric]
		hy := r.Runtimes[tpch.Hybrid]
		sw := r.Runtimes[tpch.Swole]
		fmt.Fprintf(&sb, "%-5s %12s %12s %12s %12s %9.2fx %9.2fx\n",
			r.Query,
			fmtDur(r.Runtimes[tpch.Volcano]), fmtDur(dc), fmtDur(hy), fmtDur(sw),
			ratio(dc, hy), ratio(hy, sw))
	}
	return sb.String()
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// microData caches one generated dataset per (R, S, card) combination
// within a harness run.
type microCache map[string]*micro.Data

func (mc microCache) get(nr, ns, card int) *micro.Data {
	k := fmt.Sprintf("%d/%d/%d", nr, ns, card)
	if d, ok := mc[k]; ok {
		return d
	}
	d := micro.Generate(micro.Config{NR: nr, NS: ns, CCard: card, Seed: 1})
	mc[k] = d
	return d
}

// Fig8 regenerates micro Q1 (value masking): runtime vs selectivity for
// multiplication (fig8a) and division (fig8b).
func (cfg Config) Fig8() []Figure {
	mc := microCache{}
	out := make([]Figure, 0, 2)
	for _, op := range []micro.Op{micro.OpMul, micro.OpDiv} {
		d := mc.get(cfg.MicroR, 1000, 1000)
		id, title := "fig8a", "Micro Q1, OP = * (memory-bound)"
		if op == micro.OpDiv {
			id, title = "fig8b", "Micro Q1, OP = / (compute-bound)"
		}
		fig := Figure{ID: id, Title: title, XLabel: "sel(%)"}
		strategies := []struct {
			name string
			fn   func(*micro.Data, micro.Op, int) int64
		}{
			{"datacentric", micro.Q1DataCentric},
			{"hybrid", micro.Q1Hybrid},
			{"rof", micro.Q1ROF},
			{"value-masking", micro.Q1ValueMasking},
		}
		for _, s := range strategies {
			series := Series{Name: s.name}
			for _, sel := range defaultSels() {
				dur := cfg.timeBest(func() int64 { return s.fn(d, op, sel) })
				series.Points = append(series.Points, Point{X: float64(sel), Runtime: dur})
			}
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out
}

// fig9Cards returns the group-key cardinalities for Figure 9, scaled so
// the largest stays at the paper's 1:10 ratio to R.
func (cfg Config) fig9Cards() []int {
	cards := []int{10, 1000, 100_000, 10_000_000}
	maxCard := cfg.MicroR / 10
	out := make([]int, 0, len(cards))
	for _, c := range cards {
		if c > maxCard {
			c = maxCard
		}
		if len(out) == 0 || out[len(out)-1] != c {
			out = append(out, c)
		}
	}
	return out
}

// Fig9 regenerates micro Q2 (key masking): one sub-figure per group-key
// cardinality.
func (cfg Config) Fig9() []Figure {
	mc := microCache{}
	labels := []string{"a", "b", "c", "d"}
	var out []Figure
	for i, card := range cfg.fig9Cards() {
		d := mc.get(cfg.MicroR, 1000, card)
		fig := Figure{
			ID:     "fig9" + labels[i%len(labels)],
			Title:  fmt.Sprintf("Micro Q2, |r_c| = %d", card),
			XLabel: "sel(%)",
		}
		strategies := []struct {
			name string
			fn   func(*micro.Data, int) int64
		}{
			{"datacentric", func(d *micro.Data, sel int) int64 { return int64(micro.Q2DataCentric(d, sel).Len()) }},
			{"hybrid", func(d *micro.Data, sel int) int64 { return int64(micro.Q2Hybrid(d, sel).Len()) }},
			{"value-masking", func(d *micro.Data, sel int) int64 { return int64(micro.Q2ValueMasking(d, sel).Len()) }},
			{"key-masking", func(d *micro.Data, sel int) int64 { return int64(micro.Q2KeyMasking(d, sel).Len()) }},
		}
		for _, s := range strategies {
			series := Series{Name: s.name}
			for _, sel := range defaultSels() {
				dur := cfg.timeBest(func() int64 { return s.fn(d, sel) })
				series.Points = append(series.Points, Point{X: float64(sel), Runtime: dur})
			}
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out
}

// Fig10 regenerates micro Q3 (access merging): one sub-figure per reused
// attribute count.
func (cfg Config) Fig10() []Figure {
	mc := microCache{}
	var out []Figure
	for i, col := range []micro.Col{micro.ColA, micro.ColY} {
		d := mc.get(cfg.MicroR, 1000, 1000)
		fig := Figure{
			ID:     "fig10" + string(rune('a'+i)),
			Title:  fmt.Sprintf("Micro Q3, COL = %s", col),
			XLabel: "sel(%)",
		}
		strategies := []struct {
			name string
			fn   func(*micro.Data, micro.Col, int) int64
		}{
			{"datacentric", micro.Q3DataCentric},
			{"hybrid", micro.Q3Hybrid},
			{"value-masking", micro.Q3ValueMasking},
			{"access-merging", micro.Q3AccessMerging},
		}
		for _, s := range strategies {
			series := Series{Name: s.name}
			for _, sel := range defaultSels() {
				dur := cfg.timeBest(func() int64 { return s.fn(d, col, sel) })
				series.Points = append(series.Points, Point{X: float64(sel), Runtime: dur})
			}
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out
}

// Fig11 regenerates micro Q4 (positional bitmaps): four panels fixing one
// side's selectivity at 10% or 90% while sweeping the other. |S| follows
// the paper's 1M, capped at half of R.
func (cfg Config) Fig11() []Figure {
	ns := 1_000_000
	if ns > cfg.MicroR/2 {
		ns = cfg.MicroR / 2
	}
	mc := microCache{}
	d := mc.get(cfg.MicroR, ns, 1000)
	panels := []struct {
		id, title string
		fixProbe  bool
		fixed     int
	}{
		{"fig11a", "Micro Q4, probe sel fixed 10%, sweep build", true, 10},
		{"fig11b", "Micro Q4, probe sel fixed 90%, sweep build", true, 90},
		{"fig11c", "Micro Q4, build sel fixed 10%, sweep probe", false, 10},
		{"fig11d", "Micro Q4, build sel fixed 90%, sweep probe", false, 90},
	}
	strategies := []struct {
		name string
		fn   func(*micro.Data, int, int) int64
	}{
		{"datacentric", micro.Q4DataCentric},
		{"hybrid", micro.Q4Hybrid},
		{"positional-bitmap", micro.Q4Bitmap},
	}
	var out []Figure
	for _, p := range panels {
		fig := Figure{ID: p.id, Title: p.title, XLabel: "sel(%)"}
		for _, s := range strategies {
			series := Series{Name: s.name}
			for _, sel := range defaultSels() {
				sel1, sel2 := p.fixed, sel
				if !p.fixProbe {
					sel1, sel2 = sel, p.fixed
				}
				dur := cfg.timeBest(func() int64 { return s.fn(d, sel1, sel2) })
				series.Points = append(series.Points, Point{X: float64(sel), Runtime: dur})
			}
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out
}

// Fig12 regenerates micro Q5 (eager aggregation): |S| = 1K and 1M (the
// latter capped at half of R).
func (cfg Config) Fig12() []Figure {
	sizes := []int{1000, 1_000_000}
	if sizes[1] > cfg.MicroR/2 {
		sizes[1] = cfg.MicroR / 2
	}
	mc := microCache{}
	strategies := []struct {
		name string
		fn   func(*micro.Data, int) int64
	}{
		{"datacentric", func(d *micro.Data, sel int) int64 { return int64(micro.Q5DataCentric(d, sel).Len()) }},
		{"hybrid", func(d *micro.Data, sel int) int64 { return int64(micro.Q5Hybrid(d, sel).Len()) }},
		{"eager-aggregation", func(d *micro.Data, sel int) int64 { return int64(micro.Q5EagerAggregation(d, sel).Len()) }},
	}
	var out []Figure
	for i, ns := range sizes {
		d := mc.get(cfg.MicroR, ns, 1000)
		fig := Figure{
			ID:     "fig12" + string(rune('a'+i)),
			Title:  fmt.Sprintf("Micro Q5, |S| = %d", ns),
			XLabel: "sel(%)",
		}
		for _, s := range strategies {
			series := Series{Name: s.name}
			for _, sel := range defaultSels() {
				dur := cfg.timeBest(func() int64 { return s.fn(d, sel) })
				series.Points = append(series.Points, Point{X: float64(sel), Runtime: dur})
			}
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out
}
