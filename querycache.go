package swole

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/reprolab/swole/internal/core"
	"github.com/reprolab/swole/internal/volcano"
)

// Plan cache: QuerySwole remembers every SWOLE-shaped statement it has
// executed as a prepared query (see core's Prepared* types). A repeated
// statement skips the SQL frontend, the sampling pass, and the cost-model
// evaluation entirely, and executes on preallocated resources — the
// steady-state path allocates nothing after its first execution.
//
// Two keys index the cache. The raw statement text is the fast key: a
// byte-identical re-execution hits with a single map lookup and zero
// allocations. A whitespace-normalized form is the slow key, so that
// reformatted spellings of one statement ("select  sum(x)\nfrom t" vs
// "select sum(x) from t") share one prepared plan; raw-text aliases are
// installed on normalized hits, making every spelling fast from its
// second use.
//
// Each entry records the versions of the tables it reads. Entries whose
// tables have been replaced are dropped lazily on lookup, and
// CreateTable evicts eagerly (plans and statistics both), so a mutated
// table can never serve a stale answer.
//
// The *Result returned by a cached execution is owned by the cache entry
// and overwritten by the next execution of the same statement; callers
// that need the answer past that point copy it (Rows already copies row
// headers; the data itself is immutable until the next run).

// maxCachedPlans bounds the cache. Past the bound the cache is cleared
// wholesale: plans re-prepare in one execution, and a workload with more
// than maxCachedPlans distinct steady-state statements is not steady.
const maxCachedPlans = 256

// tableDep pins one input table at the version AND shard epoch the plan
// was prepared against. The epoch moves on ShardTable (layout change, no
// data change) and ReplaceShard (data change in one shard), so a plan
// whose fan-out no longer matches the table's layout is dropped on its
// next lookup — and only that table's plans are, which is the shard-
// aware invalidation granularity TestInvalidationGranularity pins.
type tableDep struct {
	name  string
	ver   uint64
	epoch uint64
}

// planRunner executes one compiled core plan under a context deadline
// and returns its partial answer: the scalar sum for single-value
// shapes, the sorted group partial for group shapes, or the materialized
// row set for generic synthesized plans (which never fan out). Returning
// partials rather than writing the entry's result directly is what lets
// the fan-out path collect per-shard answers and merge them afterwards;
// the cache itself stays shape-blind.
type planRunner interface {
	run(ctx context.Context) (sum int64, groups *core.GroupResult, rows *core.SelectResult, ex core.Explain, err error)
}

type scalarRunner struct{ p *core.PreparedScalarAgg }
type groupRunner struct{ p *core.PreparedGroupAgg }
type semiRunner struct{ p *core.PreparedSemiJoinAgg }
type gjoinRunner struct{ p *core.PreparedGroupJoinAgg }
type selectRunner struct{ p *core.PreparedSelect }

func (r scalarRunner) run(ctx context.Context) (int64, *core.GroupResult, *core.SelectResult, core.Explain, error) {
	sum, ex, err := r.p.RunContext(ctx)
	return sum, nil, nil, ex, err
}

func (r groupRunner) run(ctx context.Context) (int64, *core.GroupResult, *core.SelectResult, core.Explain, error) {
	g, ex, err := r.p.RunContext(ctx)
	return 0, g, nil, ex, err
}

func (r semiRunner) run(ctx context.Context) (int64, *core.GroupResult, *core.SelectResult, core.Explain, error) {
	sum, ex, err := r.p.RunContext(ctx)
	return sum, nil, nil, ex, err
}

func (r gjoinRunner) run(ctx context.Context) (int64, *core.GroupResult, *core.SelectResult, core.Explain, error) {
	g, ex, err := r.p.RunContext(ctx)
	return 0, g, nil, ex, err
}

func (r selectRunner) run(ctx context.Context) (int64, *core.GroupResult, *core.SelectResult, core.Explain, error) {
	res, ex, err := r.p.RunContext(ctx)
	return 0, nil, res, ex, err
}

// shardRun is one arm of a statement's fan-out: the plan compiled
// against one shard's engine plus that shard's read lock. Unsharded
// statements have a single arm with a nil lock.
type shardRun struct {
	shard int
	exec  planRunner
	lock  *sync.RWMutex
}

// cachedPlan is one prepared statement plus its reusable result
// materialization.
type cachedPlan struct {
	// mu serializes executions of this statement: the fan scratch, the
	// merger, and the result buffers below are all per-entry and reused
	// across runs. Different statements run in parallel.
	mu      sync.Mutex
	fan     []shardRun
	grouped bool // shape materializes (key, sum) rows
	shape   string
	deps    []tableDep

	// Fan-out scratch and the cross-shard merger (reused across runs; the
	// merge is the same finishCombine path the worker merge uses).
	merger   core.GroupMerger
	partials []*core.GroupResult
	sums     []int64
	exs      []core.Explain
	errs     []error
	times    []time.Duration

	// Reused result: vres's rows are slice headers into flat.
	res  Result
	vres volcano.Result
	flat []int64
}

// putScalar rematerializes a single-value result.
func (c *cachedPlan) putScalar(sum int64) {
	c.flat = append(c.flat[:0], sum)
	c.vres.Rows = append(c.vres.Rows[:0], c.flat[0:1])
}

// putGroups rematerializes a (key, sum)-per-row result. GroupResult's
// interleaved layout IS the row layout, so the row headers alias the
// plan's flat result array directly — nothing is copied. A steady-state
// rerun whose group count and backing array are unchanged (the common
// case: the plan's buffers are stable once warm) skips even the header
// rebuild; at 1M groups that skip is ~24 MB of writes per run. The
// aliasing is safe under the cache's ownership contract: the entry's
// result and the plan's buffers are overwritten together by the next
// execution, and concurrent callers receive a cloneResult copy.
func (c *cachedPlan) putGroups(g *core.GroupResult) {
	if n := g.Len(); n == len(c.vres.Rows) &&
		(n == 0 || &c.vres.Rows[0][0] == &g.Flat[0]) {
		return
	}
	c.vres.Rows = c.vres.Rows[:0]
	for i := 0; i < len(g.Flat); i += 2 {
		c.vres.Rows = append(c.vres.Rows, g.Flat[i:i+2])
	}
}

// putRows rematerializes an arbitrary-width row set (a generic
// synthesized plan's answer) into the entry's flat buffer and row
// headers, reusing both across runs.
func (c *cachedPlan) putRows(res *core.SelectResult) {
	c.flat = c.flat[:0]
	for _, r := range res.Rows {
		c.flat = append(c.flat, r...)
	}
	c.vres.Rows = c.vres.Rows[:0]
	off := 0
	for _, r := range res.Rows {
		c.vres.Rows = append(c.vres.Rows, c.flat[off:off+len(r)])
		off += len(r)
	}
}

// fresh reports whether every input table is still at its prepared
// version and shard epoch.
func (c *cachedPlan) fresh(d *DB) bool {
	for _, dep := range c.deps {
		if d.db.TableVersion(dep.name) != dep.ver || d.shardEpoch(dep.name) != dep.epoch {
			return false
		}
	}
	return true
}

// dependsOn reports whether the plan reads the named table.
func (c *cachedPlan) dependsOn(table string) bool {
	for _, dep := range c.deps {
		if dep.name == table {
			return true
		}
	}
	return false
}

// run executes the prepared plan and rematerializes the entry's result in
// place. Allocation-free once flat and the row-header array have reached
// the result's size. A canceled run returns the context's error with the
// entry (and the plan's pooled resources) intact for the next execution.
// Callers hold c.mu.
func (c *cachedPlan) run(ctx context.Context) (*Result, Explain, error) {
	if len(c.fan) == 1 && c.fan[0].lock == nil {
		sum, g, rows, cex, err := c.fan[0].exec.run(ctx)
		ex := fromCore(cex)
		ex.Shape = c.shape
		if err != nil {
			return nil, ex, err
		}
		switch {
		case rows != nil:
			c.putRows(rows)
		case c.grouped:
			c.putGroups(g)
		default:
			c.putScalar(sum)
		}
		return &c.res, ex, nil
	}
	return c.runFan(ctx)
}

// runFan scatter-gathers the statement across its shards: each arm runs
// on its own engine (its own worker gang) concurrently, holding only its
// shard's read lock, and the partials merge on this goroutine — group
// shapes through the merger's sorted merge-combine, scalar shapes by
// summation. A failed or canceled arm cancels the rest and the error
// carries the shard's attribution.
func (c *cachedPlan) runFan(ctx context.Context) (*Result, Explain, error) {
	n := len(c.fan)
	if cap(c.partials) < n {
		c.partials = make([]*core.GroupResult, n)
		c.sums = make([]int64, n)
		c.exs = make([]core.Explain, n)
		c.errs = make([]error, n)
		c.times = make([]time.Duration, n)
	}
	partials, sums := c.partials[:n], c.sums[:n]
	exs, errs, times := c.exs[:n], c.errs[:n], c.times[:n]
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := range c.fan {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arm := &c.fan[i]
			start := time.Now()
			arm.lock.RLock()
			sums[i], partials[i], _, exs[i], errs[i] = arm.exec.run(fanCtx)
			arm.lock.RUnlock()
			times[i] = time.Since(start)
			if errs[i] != nil {
				cancel() // a lost shard fails the query; stop the others
			}
		}(i)
	}
	wg.Wait()
	ex := fromCore(exs[0])
	ex.Shape = c.shape
	ex.ShardCount = n
	ex.ShardTimes = append([]time.Duration(nil), times...)
	for i := range errs {
		if errs[i] != nil {
			return nil, ex, fmt.Errorf("shard %d: %w", c.fan[i].shard, errs[i])
		}
	}
	for i := 1; i < n; i++ {
		ex.FreshAllocs += exs[i].FreshAllocs
		ex.HTGrows += exs[i].HTGrows
		ex.Variants.Add(&exs[i].Variants)
		if exs[i].PartitionTime > ex.PartitionTime {
			ex.PartitionTime = exs[i].PartitionTime
		}
	}
	mergeStart := time.Now()
	if c.grouped {
		c.putGroups(c.merger.Merge(partials))
	} else {
		total := int64(0)
		for _, s := range sums {
			total += s
		}
		c.putScalar(total)
	}
	ex.ShardMergeTime = time.Since(mergeStart)
	return &c.res, ex, nil
}

// cloneResult deep-copies a materialized result into caller-owned memory,
// detaching it from the cache entry's reused buffers. Fields are immutable
// and shared.
func cloneResult(src *volcano.Result) *Result {
	total := 0
	for _, r := range src.Rows {
		total += len(r)
	}
	flat := make([]int64, 0, total)
	rows := make([]volcano.Row, len(src.Rows))
	for i, r := range src.Rows {
		start := len(flat)
		flat = append(flat, r...)
		rows[i] = flat[start:]
	}
	return &Result{res: &volcano.Result{Fields: src.Fields, Rows: rows}}
}

// normalizeQuery collapses runs of whitespace to single spaces so
// reformatted spellings of one statement share a cache entry. Case is
// preserved: string literals are case-significant, and a lowercased key
// would conflate them. Single-quoted literals are copied verbatim —
// whitespace inside them is data, and collapsing it would alias two
// statements that differ only inside a quoted string onto one plan.
// A doubled quote (”) inside a literal is the SQL escape for a quote,
// not a close-and-reopen, and stays inside the literal.
func normalizeQuery(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	pendingSpace := false
	for i := 0; i < len(q); i++ {
		c := q[i]
		switch {
		case c == '\'':
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			b.WriteByte(c)
			for i++; i < len(q); i++ {
				b.WriteByte(q[i])
				if q[i] == '\'' {
					if i+1 < len(q) && q[i+1] == '\'' {
						i++
						b.WriteByte(q[i])
						continue
					}
					break
				}
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			b.WriteByte(c)
		}
	}
	return b.String()
}

// cachedRun serves a statement from the plan cache; found reports whether
// a current cache entry handled it (possibly with an error — a canceled
// execution). The DB mutex covers only the map lookup; the run itself
// holds the entry's own lock, so different statements execute in
// parallel (down to the engine locks) while executions of one statement
// — which reuse per-entry result buffers — still serialize. With copyRes
// the caller receives a private copy of the result, detached from the
// entry's reused buffers — the concurrent-caller contract of
// QueryContext.
func (d *DB) cachedRun(ctx context.Context, q string, copyRes bool) (res *Result, ex Explain, found bool, err error) {
	d.mu.Lock()
	c := d.plans[q]
	if c == nil {
		norm := normalizeQuery(q)
		if c = d.normPlans[norm]; c == nil {
			d.mu.Unlock()
			return nil, Explain{}, false, nil
		}
		// Alias the raw spelling so its next execution is a single lookup.
		d.plans[q] = c
	}
	d.mu.Unlock()
	// The freshness check reads shard epochs (shardMu), so it must run
	// outside d.mu: the lock order is shardMu before d.mu (ReplaceShard
	// holds shardMu while evicting plans). A plan going stale between this
	// check and the run is benign — it executes against the immutable
	// arrays it was bound to, answering as of just before the swap.
	if !c.fresh(d) {
		d.mu.Lock()
		d.dropPlanLocked(c)
		d.mu.Unlock()
		return nil, Explain{}, false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ex, err = c.run(ctx)
	if err != nil {
		return nil, ex, true, err
	}
	if copyRes {
		res = cloneResult(&c.vres)
	}
	return res, ex, true, nil
}

// storePlan inserts a freshly prepared statement under both keys.
func (d *DB) storePlan(q string, c *cachedPlan) {
	d.mu.Lock()
	if len(d.plans) >= maxCachedPlans || len(d.normPlans) >= maxCachedPlans {
		d.plans = map[string]*cachedPlan{}
		d.normPlans = map[string]*cachedPlan{}
	}
	d.plans[q] = c
	d.normPlans[normalizeQuery(q)] = c
	d.mu.Unlock()
}

// dropPlanLocked removes every key pointing at the entry. Callers hold
// d.mu.
func (d *DB) dropPlanLocked(c *cachedPlan) {
	for k, v := range d.plans {
		if v == c {
			delete(d.plans, k)
		}
	}
	for k, v := range d.normPlans {
		if v == c {
			delete(d.normPlans, k)
		}
	}
}

// invalidateTable evicts cached statistics and plans that read the named
// table. Called on every CreateTable.
func (d *DB) invalidateTable(table string) {
	d.engine.InvalidateStats(table)
	d.shardMu.RLock()
	for _, fs := range d.fleet {
		fs.engine.InvalidateStats(table)
	}
	d.shardMu.RUnlock()
	d.evictPlans(table)
}

// evictPlans drops the cached plans that read the named table — and only
// those; other tables' plans stay warm. ShardTable uses it directly
// (layout changed, data and statistics did not).
func (d *DB) evictPlans(table string) {
	d.mu.Lock()
	for k, c := range d.plans {
		if c.dependsOn(table) {
			delete(d.plans, k)
		}
	}
	for k, c := range d.normPlans {
		if c.dependsOn(table) {
			delete(d.normPlans, k)
		}
	}
	d.mu.Unlock()
}

// PlanCacheLen reports the number of distinct raw-text keys in the plan
// cache; exposed for tests and introspection.
func (d *DB) PlanCacheLen() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.plans)
}

// SetWorkers pins the SWOLE executor's morsel worker count; 0 restores
// the default (one per CPU). Prepared plans bake in their worker count,
// so changing it clears the plan cache.
func (d *DB) SetWorkers(n int) {
	d.mu.Lock()
	d.plans = map[string]*cachedPlan{}
	d.normPlans = map[string]*cachedPlan{}
	d.mu.Unlock()
	d.engine.Workers = n
	d.shardMu.RLock()
	for _, fs := range d.fleet {
		fs.engine.Workers = n
	}
	d.shardMu.RUnlock()
}

// PartitionMode selects how the SWOLE executor decides between direct
// and radix-partitioned group-by execution; see SetPartitionMode.
type PartitionMode = core.PartitionMode

// Partition modes, re-exported from the core engine.
const (
	// PartitionAuto defers to the cost model (the default): the radix
	// path runs when the estimated hash-table footprint overflows the
	// cache budget and the two-phase model is cheaper.
	PartitionAuto = core.PartitionAuto
	// PartitionOff forces the direct per-worker hash-table path.
	PartitionOff = core.PartitionOff
	// PartitionOn forces the radix-partitioned path (benchmarks,
	// experiments).
	PartitionOn = core.PartitionOn
)

// SetPartitionMode pins the direct-vs-partitioned execution decision for
// group-by aggregations. Prepared plans bake the decision in, so changing
// the mode clears the plan cache, like SetWorkers.
func (d *DB) SetPartitionMode(m PartitionMode) {
	d.mu.Lock()
	d.plans = map[string]*cachedPlan{}
	d.normPlans = map[string]*cachedPlan{}
	d.mu.Unlock()
	d.engine.Partition = m
	d.shardMu.RLock()
	for _, fs := range d.fleet {
		fs.engine.Partition = m
	}
	d.shardMu.RUnlock()
}

// Close releases the executor's persistent worker goroutines, including
// every shard engine's gang. The DB remains usable after Close (gangs
// respawn on demand); Close exists for goroutine hygiene when many DBs
// are created in one process.
func (d *DB) Close() {
	d.engine.Close()
	d.shardMu.RLock()
	for _, fs := range d.fleet {
		fs.engine.Close()
	}
	d.shardMu.RUnlock()
}
