package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	swole "github.com/reprolab/swole"
)

// Dependency-free metrics for the serving subsystem, rendered in the
// Prometheus text exposition format (version 0.0.4) — counters by query
// shape and outcome, one latency histogram, gauges for admission state,
// and engine-wide aggregates of the Explain counters the engine already
// reports per query (plan-cache hits, stats-cache hits, hash-table
// growths, fresh resource allocations). A scrape renders everything under
// one mutex; the per-query observe path touches the same mutex once, so
// metric cost is a map update per query, not a contention point next to
// the engine's own serialization.

// Outcome labels for swole_queries_total.
const (
	outcomeOK       = "ok"
	outcomeCanceled = "canceled"
	outcomeTimeout  = "timeout"
	outcomeRejected = "rejected"
	outcomeError    = "error"
)

// latencyBuckets are the histogram's upper bounds in seconds, spanning
// cache-hit microbenchmark queries to multi-second cold scans.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics is the server's registry. The zero value is not ready; use
// newMetrics.
type metrics struct {
	mu      sync.Mutex
	queries map[[2]string]uint64 // {shape, outcome} → count
	buckets []uint64             // cumulative-style counts per latencyBuckets entry
	infSum  float64              // histogram sum (seconds)
	infCnt  uint64               // histogram count

	planCacheHits  uint64
	statsCacheHits uint64
	htGrows        uint64
	freshAllocs    uint64

	inflight atomic.Int64
	queued   atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		queries: map[[2]string]uint64{},
		buckets: make([]uint64, len(latencyBuckets)),
	}
}

// observe records one finished (or refused) query: its shape and outcome,
// its wall time, and — when the query executed far enough to produce an
// Explain — the engine counters.
func (m *metrics) observe(shape, outcome string, d time.Duration, ex *swole.Explain) {
	if shape == "" {
		shape = "unknown"
	}
	sec := d.Seconds()
	m.mu.Lock()
	m.queries[[2]string{shape, outcome}]++
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.buckets[i]++
		}
	}
	m.infSum += sec
	m.infCnt++
	if ex != nil {
		if ex.PlanCached {
			m.planCacheHits++
		}
		if ex.StatsCached {
			m.statsCacheHits++
		}
		m.htGrows += uint64(ex.HTGrows)
		m.freshAllocs += uint64(ex.FreshAllocs)
	}
	m.mu.Unlock()
}

// render writes the registry in Prometheus text format. Label sets are
// emitted sorted so scrapes are deterministic (and testable by substring).
func (m *metrics) render(w *strings.Builder) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP swole_queries_total Queries served, by shape and outcome.\n")
	fmt.Fprintf(w, "# TYPE swole_queries_total counter\n")
	keys := make([][2]string, 0, len(m.queries))
	for k := range m.queries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "swole_queries_total{shape=%q,outcome=%q} %d\n", k[0], k[1], m.queries[k])
	}

	fmt.Fprintf(w, "# HELP swole_query_duration_seconds Query wall time, admission wait included.\n")
	fmt.Fprintf(w, "# TYPE swole_query_duration_seconds histogram\n")
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "swole_query_duration_seconds_bucket{le=\"%g\"} %d\n", ub, m.buckets[i])
	}
	fmt.Fprintf(w, "swole_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.infCnt)
	fmt.Fprintf(w, "swole_query_duration_seconds_sum %g\n", m.infSum)
	fmt.Fprintf(w, "swole_query_duration_seconds_count %d\n", m.infCnt)

	fmt.Fprintf(w, "# HELP swole_inflight_queries Queries admitted and executing now.\n")
	fmt.Fprintf(w, "# TYPE swole_inflight_queries gauge\n")
	fmt.Fprintf(w, "swole_inflight_queries %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP swole_queued_queries Queries waiting for admission now.\n")
	fmt.Fprintf(w, "# TYPE swole_queued_queries gauge\n")
	fmt.Fprintf(w, "swole_queued_queries %d\n", m.queued.Load())

	engine := []struct {
		name, help string
		v          uint64
	}{
		{"swole_plan_cache_hits_total", "Queries whose planning decision was replayed from the plan cache.", m.planCacheHits},
		{"swole_stats_cache_hits_total", "Queries planned from cached sampling statistics.", m.statsCacheHits},
		{"swole_ht_grows_total", "Hash-table growth events during query execution.", m.htGrows},
		{"swole_fresh_allocs_total", "Execution resources newly allocated rather than recycled.", m.freshAllocs},
	}
	for _, c := range engine {
		fmt.Fprintf(w, "# HELP %s %s\n", c.name, c.help)
		fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
}
