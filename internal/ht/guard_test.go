package ht

import (
	"math"
	"testing"
)

// Hint clamping: every constructor and Reserve must survive zero and
// negative cardinality hints with the explicit minimum capacity, not
// whatever nextPow2 of a negative product happens to produce.

func TestAggTableHintClamp(t *testing.T) {
	for _, hint := range []int{math.MinInt, -5, -1, 0, 1} {
		tab := NewAggTable(1, hint)
		if tab.Cap() != 8 {
			t.Errorf("NewAggTable(1, %d): cap %d, want minimum 8", hint, tab.Cap())
		}
		for k := int64(0); k < 20; k++ {
			tab.Add(tab.Lookup(k), 0, k)
		}
		if tab.Len() != 20 {
			t.Errorf("NewAggTable(1, %d): %d groups after 20 inserts", hint, tab.Len())
		}
	}
	tab := NewAggTable(1, 1000)
	capBefore := tab.Cap()
	for _, hint := range []int{math.MinInt, -1, 0} {
		tab.Reserve(hint)
		if tab.Cap() != capBefore {
			t.Errorf("Reserve(%d) changed capacity %d -> %d", hint, capBefore, tab.Cap())
		}
	}
}

func TestJoinAndSetTableHintClamp(t *testing.T) {
	for _, hint := range []int{math.MinInt, -7, 0} {
		jt := NewJoinTable(hint)
		if jt.Cap() != 8 {
			t.Errorf("NewJoinTable(%d): cap %d, want 8", hint, jt.Cap())
		}
		for k := int64(0); k < 20; k++ {
			jt.Insert(k, int32(k))
		}
		if jt.Len() != 20 {
			t.Errorf("NewJoinTable(%d): %d keys after 20 inserts", hint, jt.Len())
		}
		jt.Reserve(hint)
		if row, ok := jt.Probe(7); !ok || row != 7 {
			t.Errorf("NewJoinTable(%d): Probe(7) = %d,%v after no-op Reserve", hint, row, ok)
		}

		st := NewSetTable(hint)
		for k := int64(0); k < 20; k++ {
			st.Insert(k)
		}
		st.Reserve(hint)
		if st.Len() != 20 || !st.Contains(19) {
			t.Errorf("NewSetTable(%d): len=%d Contains(19)=%v", hint, st.Len(), st.Contains(19))
		}
	}
}

// TestHintCapOverflow checks a hint near MaxInt cannot overflow the
// hint*2 sizing arithmetic into a negative or tiny capacity.
func TestHintCapOverflow(t *testing.T) {
	c := hintCap(math.MaxInt)
	if c != nextPow2(maxHint*2) {
		t.Errorf("hintCap(MaxInt) = %d, want clamp to %d", c, nextPow2(maxHint*2))
	}
	if c <= 0 {
		t.Fatalf("hintCap(MaxInt) overflowed to %d", c)
	}
}

// Epoch-wrap fallback: after ~4 billion Resets the 32-bit generation
// counter wraps and stale stamps could collide with the new generation;
// Reset falls back to a hard clear exactly once. The test hook jumps the
// counter to the edge so the wrap branch actually executes.

func TestAggTableEpochWrap(t *testing.T) {
	tab := NewAggTable(1, 16)
	for k := int64(0); k < 10; k++ {
		tab.Add(tab.Lookup(k), 0, k+1)
	}
	tab.setEpochForTest(math.MaxUint32)
	if tab.Len() != 10 {
		t.Fatalf("live groups lost by epoch hook: len=%d", tab.Len())
	}
	if tab.Find(3) < 0 {
		t.Fatal("key 3 not live at epoch MaxUint32")
	}

	tab.Reset() // cur wraps MaxUint32 -> 0, triggering the hard clear
	if got := tab.cur; got != 1 {
		t.Fatalf("after wrap Reset: cur=%d, want 1", got)
	}
	if tab.Len() != 0 {
		t.Fatalf("after wrap Reset: len=%d, want 0", tab.Len())
	}
	for k := int64(0); k < 10; k++ {
		if tab.Find(k) != -2 {
			t.Errorf("key %d survived the wrap Reset", k)
		}
	}
	// Stale stamps were cleared, so the epoch cannot collide: new inserts
	// land in fresh slots with zeroed accumulators.
	s := tab.Lookup(3)
	if got := tab.Acc(s, 0); got != 0 {
		t.Errorf("reclaimed slot carries stale accumulator %d", got)
	}
	tab.Add(s, 0, 42)
	if got := tab.Acc(tab.Find(3), 0); got != 42 {
		t.Errorf("post-wrap aggregate = %d, want 42", got)
	}
}

func TestJoinTableEpochWrap(t *testing.T) {
	jt := NewJoinTable(16)
	for k := int64(0); k < 10; k++ {
		jt.Insert(k, int32(k*10))
	}
	jt.setEpochForTest(math.MaxUint32)
	if row, ok := jt.Probe(4); !ok || row != 40 {
		t.Fatalf("Probe(4) = %d,%v at epoch MaxUint32", row, ok)
	}

	jt.Reset()
	if jt.cur != 1 {
		t.Fatalf("after wrap Reset: cur=%d, want 1", jt.cur)
	}
	if jt.Len() != 0 {
		t.Fatalf("after wrap Reset: len=%d, want 0", jt.Len())
	}
	for k := int64(0); k < 10; k++ {
		if _, ok := jt.Probe(k); ok {
			t.Errorf("key %d survived the wrap Reset", k)
		}
	}
	if !jt.Insert(4, 7) {
		t.Error("post-wrap Insert reported duplicate")
	}
	if row, ok := jt.Probe(4); !ok || row != 7 {
		t.Errorf("post-wrap Probe(4) = %d,%v, want 7,true", row, ok)
	}
}
