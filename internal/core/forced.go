package core

import (
	"fmt"
)

// Forced-technique execution: run a query shape under a *chosen* strategy
// instead of the cost model's pick. This powers strategy comparisons on
// user queries (the public CompareStrategies API) and ablation studies.
//
// A forced run is the compile pipeline with the technique override: the
// plan compiles exactly like a prepared query but sequential (forced runs
// measure kernel character, not parallel speedup), runs once inline, and
// its husk returns to the free list — so a comparison loop over
// techniques recycles tile buffers and hash tables across calls instead
// of reallocating them.

// ScalarAggForced executes a scalar aggregation under the given technique
// (TechDataCentric, TechHybrid, or TechValueMasking).
func (e *Engine) ScalarAggForced(q ScalarAgg, tech Technique) (int64, error) {
	switch tech {
	case TechDataCentric, TechHybrid, TechValueMasking, TechAccessMerging:
	default:
		return 0, fmt.Errorf("core: technique %s does not apply to scalar aggregation", tech)
	}
	e.execMu.Lock()
	defer e.execMu.Unlock()
	p, err := e.compileScalarAgg(nil, q, tech, e.planEnv())
	if err != nil {
		return 0, err
	}
	sum, _, _ := p.runLocked(nil)
	pushFree(e, &e.freeScalar, p)
	return sum, nil
}

// GroupAggForced executes a group-by aggregation under the given technique
// (TechDataCentric, TechHybrid, TechValueMasking, or TechKeyMasking).
func (e *Engine) GroupAggForced(q GroupAgg, tech Technique) (map[int64]int64, error) {
	switch tech {
	case TechDataCentric, TechHybrid, TechValueMasking, TechKeyMasking:
	default:
		return nil, fmt.Errorf("core: technique %s does not apply to group-by aggregation", tech)
	}
	e.execMu.Lock()
	defer e.execMu.Unlock()
	p, err := e.compileGroupAgg(nil, q, tech, e.planEnv())
	if err != nil {
		return nil, err
	}
	res, _, _ := p.runLocked(nil)
	out := res.Map()
	pushFree(e, &e.freeGroup, p)
	return out, nil
}
