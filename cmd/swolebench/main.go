// Command swolebench regenerates the measured experiments of the paper:
// Figure 6 (TPC-H under volcano/data-centric/hybrid/SWOLE) and Figures
// 8-12 (the technique microbenchmarks).
//
// Usage:
//
//	swolebench -fig 6            # one figure
//	swolebench -fig all          # everything
//	swolebench -fig 2            # the technique summary table
//	swolebench -fig scaling -workers 8   # morsel scaling sweep, 1..8 workers
//	swolebench -repeat 10        # steady state: cold vs plan-cached warm runs
//	swolebench -query 'select r_c, count(*) as n from r group by r_c having n > 10'
//	                             # one arbitrary statement: synthesized plan + timings
//	swolebench -kernel-variants  # per-query kernel-variant selection counters
//	swolebench -ingest batch.csv -repeat 5
//	                             # append a CSV batch through the ingestion
//	                             # kernel 5 times; decode+append throughput
//	swolebench -repeat 10 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Scales come from the environment (SWOLE_SF, SWOLE_MICRO_R, SWOLE_REPS,
// SWOLE_WORKERS); see internal/harness. Paper scales are SF=10 and R=100M —
// set them only on hardware comparable to the paper's.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/reprolab/swole/internal/harness"
	"github.com/reprolab/swole/internal/tpch"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "swolebench:", err)
		os.Exit(1)
	}
}

// realMain carries the program body so that os.Exit cannot skip the
// profile-flushing defers.
func realMain() error {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 6, 8, 9, 10, 11, 12, scaling, or all")
	csv := flag.Bool("csv", false, "emit micro figures as CSV for plotting")
	workers := flag.Int("workers", 0, "max morsel workers the scaling figure sweeps to (0 = SWOLE_WORKERS or NumCPU)")
	repeat := flag.Int("repeat", 0, "steady-state demo: run each supported query shape N times and report cold vs plan-cached warm timings")
	query := flag.String("query", "", "run one arbitrary SQL statement against the micro dataset and report its synthesized plan, cold timing, and plan-cached warm timing")
	shards := flag.Int("shards", 0, "split the fact table into this many in-process shards for -repeat (negative = cost model decides, 0/1 = unsharded)")
	variants := flag.Bool("kernel-variants", false, "run each supported query shape and report the kernel-variant selection counters from Explain")
	ingestFile := flag.String("ingest", "", "append this CSV file to the micro dataset through the table's ingestion kernel and report decode+append throughput (-repeat batches)")
	ingestTable := flag.String("ingest-table", "r", "table -ingest appends to (CSV fields line up with its columns)")
	ingestPolicy := flag.String("ingest-policy", "strict", "malformed-row policy for -ingest: strict (refuse the batch) or skip (drop and attribute)")
	timeout := flag.Duration("timeout", 0, "per-query deadline for -repeat runs; deadline-exceeded runs are counted and reported separately (0 = no deadline)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "swolebench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "swolebench:", err)
			}
		}()
	}

	cfg := harness.FromEnv()
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *variants {
		return runKernelVariants(cfg)
	}
	if *ingestFile != "" {
		return runIngest(cfg, *ingestFile, *ingestTable, *ingestPolicy, *repeat, *shards)
	}
	if *query != "" {
		return runQuery(cfg, *query, *repeat, *timeout, *shards)
	}
	if *repeat > 0 {
		return runSteady(cfg, *repeat, *timeout, *shards)
	}
	fmt.Printf("config: SF=%g micro R=%d reps=%d workers=%d\n\n", cfg.SF, cfg.MicroR, cfg.Reps, cfg.Workers)

	show := func(figs []harness.Figure) {
		for _, f := range figs {
			if *csv {
				fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
			} else {
				fmt.Println(f.Format())
			}
		}
	}
	run := func(name string) error {
		switch name {
		case "2":
			fmt.Println(techniqueTable)
		case "6":
			rows, err := cfg.Fig6()
			if err != nil {
				return err
			}
			fmt.Println("Figure 6: TPC-H (runtimes; hy/dc and sw/hy are the paper's speedup columns)")
			fmt.Println(harness.FormatFig6(rows))
			fmt.Println("SWOLE technique per query (paper Section IV-A):")
			for _, ex := range tpch.ExplainSwole() {
				techs := "none (hybrid fallback)"
				if len(ex.Techniques) > 0 {
					parts := make([]string, len(ex.Techniques))
					for i, t := range ex.Techniques {
						parts[i] = t.String()
					}
					techs = strings.Join(parts, " + ")
				}
				fmt.Printf("  %-4s %-34s %s\n", ex.Query, techs, ex.Rationale)
			}
		case "8":
			show(cfg.Fig8())
		case "9":
			show(cfg.Fig9())
		case "10":
			show(cfg.Fig10())
		case "11":
			show(cfg.Fig11())
		case "12":
			show(cfg.Fig12())
		case "scaling":
			show(cfg.FigScaling())
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		return nil
	}

	var figs []string
	if *fig == "all" {
		figs = []string{"2", "6", "8", "9", "10", "11", "12", "scaling"}
	} else {
		figs = []string{*fig}
	}
	for _, f := range figs {
		if err := run(f); err != nil {
			return err
		}
	}
	return nil
}

// techniqueTable is the paper's Figure 2.
const techniqueTable = `Figure 2: Summary of SWOLE Techniques
Section  Technique           Operators                               Heuristics
III-A    Value Masking       All                                     Memory-Bound, Small Hash Tables
III-B    Key Masking         Group-By Aggregation, Join, Groupjoin   Complex Aggregation, Large Hash Tables
III-C    Access Merging      All                                     Always Better
III-D    Positional Bitmaps  Join, Semijoin                          Always Better
III-E    Eager Aggregation   Join, Groupjoin                         Low-Cardinality Group-By Keys`
