package core

import (
	"github.com/reprolab/swole/internal/ht"
)

// Radix-partitioned two-phase group-by execution — the paper's access-
// aware philosophy applied one level below the masking decision. The
// direct path sends every tuple through a random probe of a full-size
// per-worker hash table; once the table overflows the cache budget those
// probes are DRAM round-trips. The partitioned path replaces them with
// two sequential passes:
//
//	phase 1  workers claim morsels, evaluate key and aggregate input
//	         (masking applied exactly as on the direct path), and append
//	         the (key, value) pair to a per-worker buffer selected by the
//	         key hash's top bits — sequential writes, no hash table.
//	phase 2  workers claim disjoint partitions; for each, they fold every
//	         worker's buffer for that partition into one small table
//	         sized htBytes/parts — cache-resident by construction — and
//	         emit its groups directly.
//
// Because a radix partition owns its keys exclusively, phase 2 needs no
// cross-worker merge: the per-group fold into a Go map that dominates the
// direct path's merge at high cardinality disappears from the hot path
// (the map remains only as the one-shot API's result container, filled
// from already-final per-partition emissions).

// subTableHint sizes a phase-2 partition table: the estimated groups
// spread evenly over the fan-out. No extra skew headroom: the radix hash
// balances partitions to within a few standard deviations of the mean,
// the table's own hint-to-capacity doubling leaves the expected load
// under 50%, and the sampled group count already skews high. Staying
// under the power-of-two capacity step matters twice per run — the fold
// probes a table half the footprint, and the emission scan walks half
// the slots — and an underestimate costs one rehash whose capacity
// ratchets in the recycled table.
func subTableHint(groups, parts int) int {
	return groups/parts + 8
}

// foldPartition aggregates one partition's pairs from every worker's
// chunk list into tab (Reset first). The partition's keys appear in no
// other partition, so tab holds those groups' final sums afterwards. Each
// chunk folds through ht.AggTable.FoldPairs, which touches probe targets
// ht.PrefetchDist pairs ahead when (and only when) the table spills past
// the cache budget. It returns the number of pairs folded with the
// lookahead, which the kernels tally into the prefetch counters.
func foldPartition(tab *ht.AggTable, parters []*ht.Partitioner, part int) int {
	tab.Reset()
	n := 0
	for _, pr := range parters {
		for c := pr.Head(part); c >= 0; c = pr.NextChunk(c) {
			keys, vals := pr.Chunk(part, c)
			n += tab.FoldPairs(keys, vals)
		}
	}
	return n
}
